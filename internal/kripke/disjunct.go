package kripke

import (
	"strconv"

	"repro/internal/bdd"
)

// Disjunctively partitioned transition relations for asynchronous
// interleaving models. Where the conjunctive partition (partition.go)
// factors a synchronous relation R = ⋀ᵢ Cᵢ, an interleaved model is
// naturally a union of per-process step relations
//
//	R(v,v′) = ⋁ᵢ Tᵢ(v,v′)
//
// (each Tᵢ: "process i takes a step, everything it does not drive is
// framed"), and the image distributes over the union:
//
//	Image(S) = ⋃ᵢ ∃v.(S ∧ Tᵢ)
//
// Each component gets its own quantification cubes: variables outside
// Tᵢ's support are quantified from the argument *before* the relational
// product (∃x.(S ∧ T) = (∃x.S) ∧ T when x ∉ sup(T)), shrinking the
// operand AndExists actually sees. Components are independent — no
// chain threads an accumulator through them — which is what makes the
// disjunctive image parallelizable: with SetWorkers(n>1) the
// per-component AndExists calls run as independent jobs of one
// fork-join section on the shared-memory parallel BDD engine
// (bdd.RunParallel), all workers extending the same striped unique
// table, and the coordinator OR-merges the results after the join.
// There is no operand copying and no copy-back: every worker's result
// is already a canonical ref in the main manager (see DESIGN.md §5 for
// the concurrency model).
//
// Reachability additionally tracks a per-component frontier: fed[i] is
// the set of states already expanded through component i, so a round
// only feeds each component the states it has not seen. Sequentially
// the components chain — states discovered by component i feed
// component i+1 within the same round — while the parallel schedule
// expands all components from the same snapshot and merges.

// component is one disjunct Tᵢ with its precomputed quantification
// cubes for both image directions.
type component struct {
	rel  bdd.Ref
	name string

	imgCube bdd.Ref // current-state vars in sup(rel): quantified inside AndExists
	imgFree bdd.Ref // current-state vars absent from rel: pre-quantified from the argument
	preCube bdd.Ref // next-state vars in sup(rel)
	preFree bdd.Ref // next-state vars absent from rel
}

// Disjunct holds the components of a disjunctive transition partition.
type Disjunct struct {
	comps []component
}

// NumComponents returns the number of disjunctive components.
func (d *Disjunct) NumComponents() int { return len(d.comps) }

// ComponentNames returns the component display names in installation
// order.
func (d *Disjunct) ComponentNames() []string {
	out := make([]string, len(d.comps))
	for i := range d.comps {
		out[i] = d.comps[i].name
	}
	return out
}

// Components returns a copy of the component relations.
func (d *Disjunct) Components() []bdd.Ref {
	out := make([]bdd.Ref, len(d.comps))
	for i := range d.comps {
		out[i] = d.comps[i].rel
	}
	return out
}

// SetDisjuncts installs a disjunctive partition of the transition
// relation: the union of the components must equal Trans (the SMV
// compiler guarantees this for process models). Constant-false
// components are dropped. names supplies display names per component
// (nil for positional defaults). Passing an empty slice removes the
// partition. Installation computes the per-component quantification
// cubes from the components' supports.
//
// The disjunctive path starts disabled; EnableDisjunct(true) switches
// Image/Preimage/Reachable over to it.
func (s *Symbolic) SetDisjuncts(comps []bdd.Ref, names []string) {
	m := s.M
	if s.disj != nil {
		for i := range s.disj.comps {
			c := &s.disj.comps[i]
			m.Unprotect(c.rel)
			m.Unprotect(c.imgCube)
			m.Unprotect(c.imgFree)
			m.Unprotect(c.preCube)
			m.Unprotect(c.preFree)
		}
		s.disj = nil
	}
	if len(comps) == 0 {
		return
	}
	isCur := make(map[int]bool, len(s.Vars))
	isNext := make(map[int]bool, len(s.Vars))
	for _, v := range s.Vars {
		isCur[v.Cur] = true
		isNext[v.Next] = true
	}
	d := &Disjunct{}
	for i, rel := range comps {
		if rel == bdd.False {
			continue
		}
		name := ""
		if names != nil && i < len(names) {
			name = names[i]
		}
		if name == "" {
			name = "component#" + strconv.Itoa(i)
		}
		inSup := map[int]bool{}
		for _, v := range m.Support(rel) {
			inSup[v] = true
		}
		var curIn, curOut, nextIn, nextOut []int
		for _, sv := range s.Vars {
			if inSup[sv.Cur] {
				curIn = append(curIn, sv.Cur)
			} else {
				curOut = append(curOut, sv.Cur)
			}
			if inSup[sv.Next] {
				nextIn = append(nextIn, sv.Next)
			} else {
				nextOut = append(nextOut, sv.Next)
			}
		}
		d.comps = append(d.comps, component{
			rel:     m.Protect(rel),
			name:    name,
			imgCube: m.Protect(m.Cube(curIn)),
			imgFree: m.Protect(m.Cube(curOut)),
			preCube: m.Protect(m.Cube(nextIn)),
			preFree: m.Protect(m.Cube(nextOut)),
		})
	}
	s.disj = d
	// Defer the monolithic relation when nothing installed one: Trans()
	// will OR the components on first demand, exactly as the conjunctive
	// partition defers the cluster conjunction.
	if s.trans == bdd.True && s.part == nil {
		s.transValid = false
	}
}

// EnableDisjunct toggles use of an installed disjunctive partition.
// When enabled it takes precedence over a conjunctive partition, so
// differential tests can flip one structure between all three image
// strategies (disjunctive, conjunctive, monolithic).
func (s *Symbolic) EnableDisjunct(on bool) { s.disjOn = on }

// DisjunctEnabled reports whether Image/Preimage currently use the
// disjunctive partition.
func (s *Symbolic) DisjunctEnabled() bool { return s.disj != nil && s.disjOn }

// Disjunct returns the installed disjunctive partition, or nil.
func (s *Symbolic) Disjunct() *Disjunct { return s.disj }

// NumDisjuncts returns the number of installed disjunctive components
// (0 if none).
func (s *Symbolic) NumDisjuncts() int {
	if s.disj == nil {
		return 0
	}
	return len(s.disj.comps)
}

// SetWorkers sets the number of worker goroutines used for BDD
// evaluation (n <= 1: sequential). It configures the manager's
// shared-memory parallel engine — so every image mode benefits from
// large-operand parallel Apply/AndExists — and, for a disjunctive
// partition, additionally schedules independent component products as
// concurrent jobs of one parallel section.
func (s *Symbolic) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
	s.M.SetParallelWorkers(n)
}

// Workers returns the configured disjunctive worker count.
func (s *Symbolic) Workers() int { return s.workers }

// imageDisjunct computes successors over the disjunctive components.
func (s *Symbolic) imageDisjunct(from bdd.Ref) bdd.Ref {
	args := make([]bdd.Ref, len(s.disj.comps))
	for i := range args {
		args[i] = from
	}
	return s.ToCur(s.disjunctApply(args, false))
}

// preimageDisjunct computes EX to over the disjunctive components.
func (s *Symbolic) preimageDisjunct(to bdd.Ref) bdd.Ref {
	next := s.ToNext(to)
	args := make([]bdd.Ref, len(s.disj.comps))
	for i := range args {
		args[i] = next
	}
	return s.disjunctApply(args, true)
}

// disjunctApply evaluates ⋁ᵢ ∃cubeᵢ.(argsᵢ ∧ Tᵢ) and returns the union
// (over next-state variables for the image direction, current-state for
// the preimage direction). args holds one argument per component —
// identical refs for a plain image, per-component deltas for the
// reachability sweep; bdd.False entries are skipped.
func (s *Symbolic) disjunctApply(args []bdd.Ref, pre bool) bdd.Ref {
	if s.workers > 1 && len(s.disj.comps) > 1 {
		return s.disjunctApplyParallel(args, pre)
	}
	return s.disjunctApplySeq(args, pre)
}

// disjunctApplySeq is the sequential schedule: every component's
// relational product runs on the main manager (sharing its AndExists
// cache), with a reorder safe point between components.
func (s *Symbolic) disjunctApplySeq(args []bdd.Ref, pre bool) bdd.Ref {
	m := s.M
	d := s.disj
	res := bdd.False
	ptrs := make([]*bdd.Ref, 0, len(args)+1)
	ptrs = append(ptrs, &res)
	for i := range args {
		ptrs = append(ptrs, &args[i])
	}
	id := m.RegisterRefs(ptrs...)
	for i := range d.comps {
		if args[i] == bdd.False {
			continue
		}
		m.ReorderIfNeeded()
		c := &d.comps[i]
		cube, free := c.imgCube, c.imgFree
		if pre {
			cube, free = c.preCube, c.preFree
		}
		part := m.AndExists(m.Exists(args[i], free), c.rel, cube)
		res = m.Or(res, part)
		s.relStats.ClusterSteps++
		s.relStats.DisjunctSteps++
		s.noteLiveNodes()
	}
	m.Unregister(id)
	return res
}

// disjunctTask is one component's unit of parallel work: the
// pre-projected argument, the quantification cube and the component
// relation — all refs in the shared manager — plus the result slot the
// job fills. The coordinator computes the operands before the jobs
// start and reads res after RunParallel joins, so no field is accessed
// concurrently.
type disjunctTask struct {
	arg, rel, cube bdd.Ref
	res            bdd.Ref
}

// disjunctApplyParallel is the shared-manager parallel schedule: the
// coordinator pre-quantifies each component's free variables, then
// hands the per-component relational products to bdd.RunParallel as
// independent jobs of one fork-join section on the shared parallel
// engine. Every worker extends the same striped unique table, so each
// result is already a canonical ref in the main manager — there is no
// operand copying and no copy-back, and sharing between components'
// intermediate results is found in the shared caches rather than
// recomputed per arena. Automatic reordering and GC wait for the
// section boundary (the engine's safe point), so no order-alignment
// bookkeeping is needed; the registered args translate as usual if a
// reorder fires at the safe point before the batch.
func (s *Symbolic) disjunctApplyParallel(args []bdd.Ref, pre bool) bdd.Ref {
	m := s.M
	d := s.disj
	ptrs := make([]*bdd.Ref, 0, len(args))
	for i := range args {
		ptrs = append(ptrs, &args[i])
	}
	id := m.RegisterRefs(ptrs...)
	m.ReorderIfNeeded()

	var tasks []*disjunctTask
	for i := range d.comps {
		if args[i] == bdd.False {
			continue
		}
		c := &d.comps[i]
		cube, free := c.imgCube, c.imgFree
		if pre {
			cube, free = c.preCube, c.preFree
		}
		proj := m.Exists(args[i], free)
		if proj == bdd.False {
			continue
		}
		tasks = append(tasks, &disjunctTask{arg: proj, rel: c.rel, cube: cube})
	}
	m.Unregister(id)
	if len(tasks) == 0 {
		return bdd.False
	}

	jobs := make([]func(op *bdd.ParOp), len(tasks))
	for k := range tasks {
		t := tasks[k]
		jobs[k] = func(op *bdd.ParOp) {
			t.res = op.AndExists(t.arg, t.rel, t.cube)
		}
	}
	m.RunParallel(jobs)

	res := bdd.False
	for _, t := range tasks {
		res = m.Or(res, t.res)
		s.relStats.ClusterSteps++
		s.relStats.DisjunctSteps++
	}
	s.relStats.ParallelBatches++
	s.noteLiveNodes()
	return res
}

// reachableDisjunct is the disjunctive reachability sweep with
// per-component frontier tracking: fed[i] is the set of states already
// expanded through component i, and each round feeds component i only
// reached ∖ fed[i]. Sequentially the components chain (states found by
// an earlier component feed later components in the same round); with
// workers the round expands every component from the same snapshot and
// merges. Returns the reachable set and the number of rounds.
func (s *Symbolic) reachableDisjunct() (bdd.Ref, int) {
	m := s.M
	d := s.disj
	k := len(d.comps)
	reached := m.Protect(s.Init)
	fed := make([]bdd.Ref, k) // zero value bdd.False
	id := m.OnReorder(func(translate func(bdd.Ref) bdd.Ref) {
		reached = translate(reached)
		for i := range fed {
			fed[i] = translate(fed[i])
		}
	})
	parallel := s.workers > 1 && k > 1
	rounds := 0
	for {
		m.ReorderIfNeeded()
		changed := false
		if parallel {
			args := make([]bdd.Ref, k)
			for i := range d.comps {
				args[i] = m.Diff(reached, fed[i])
			}
			snapshot := reached
			img := s.ToCur(s.disjunctApply(args, false))
			for i := range fed {
				fed[i] = snapshot
			}
			next := m.Or(reached, img)
			if next != reached {
				changed = true
				m.Unprotect(reached)
				reached = m.Protect(next)
			}
		} else {
			for i := range d.comps {
				delta := m.Diff(reached, fed[i])
				if delta == bdd.False {
					continue
				}
				fed[i] = reached
				args := make([]bdd.Ref, k)
				args[i] = delta
				img := s.ToCur(s.disjunctApplySeq(args, false))
				next := m.Or(reached, img)
				if next != reached {
					changed = true
					m.Unprotect(reached)
					reached = m.Protect(next)
				}
			}
		}
		if !changed {
			break
		}
		rounds++
		m.MaybeGC()
	}
	m.Unregister(id)
	m.Unprotect(reached)
	return reached, rounds
}
