package kripke

import (
	"fmt"

	"repro/internal/bdd"
)

// IndexBits returns the number of binary index bits FromExplicit uses
// to encode an n-state structure.
func IndexBits(n int) int {
	nbits := 1
	for 1<<nbits < n {
		nbits++
	}
	return nbits
}

// FromExplicit encodes an explicit structure symbolically using a binary
// encoding of the state index (little-endian bits named b0, b1, ...).
// This is how the paper's OBDD representation of relations over finite
// domains (end of Section 2) is obtained: states are numbered and the
// relation is the characteristic function of the encoded pairs.
func FromExplicit(e *Explicit) *Symbolic {
	return FromExplicitBuilder(e, nil).Finish()
}

// FromExplicitBuilder is FromExplicit stopped one step short of Finish:
// it returns the builder so callers can append further transition
// clusters, initial constraints, or fairness sets — the hook the LTL
// tableau product uses to ride alongside the encoded model. The extra
// names declare additional (unconstrained) state variables appended
// after the index bits b0..b{k-1}; the model's transition relation goes
// in as one ConstrainTrans cluster over the index bits only.
func FromExplicitBuilder(e *Explicit, extra []string) *Builder {
	nbits := IndexBits(e.N)
	names := make([]string, nbits, nbits+len(extra))
	for i := range names {
		names[i] = fmt.Sprintf("b%d", i)
	}
	names = append(names, extra...)
	b := NewBuilder(names)
	m := b.S.M

	stateCube := func(idx int, next bool) bdd.Ref {
		res := bdd.True
		for i := 0; i < nbits; i++ {
			var v bdd.Ref
			if next {
				v = b.Next(names[i])
			} else {
				v = b.Cur(names[i])
			}
			if idx>>i&1 == 0 {
				v = m.Not(v)
			}
			res = m.And(res, v)
		}
		return res
	}

	trans := bdd.False
	for u := 0; u < e.N; u++ {
		cu := stateCube(u, false)
		for _, v := range e.Succ[u] {
			trans = m.Or(trans, m.And(cu, stateCube(v, true)))
		}
	}
	init := bdd.False
	for _, s := range e.Init {
		init = m.Or(init, stateCube(s, false))
	}
	b.ConstrainTrans(trans)
	b.S.Init = init

	// valid-state invariant (indices < N)
	valid := bdd.False
	for s := 0; s < e.N; s++ {
		valid = m.Or(valid, stateCube(s, false))
	}
	b.S.Invar = valid

	for _, atom := range e.AtomNames() {
		set := bdd.False
		for s := 0; s < e.N; s++ {
			if e.Labels[s][atom] {
				set = m.Or(set, stateCube(s, false))
			}
		}
		b.S.RegisterAtom(atom, m.Protect(set))
	}
	for i, fs := range e.Fair {
		set := bdd.False
		for s := 0; s < e.N; s++ {
			if fs[s] {
				set = m.Or(set, stateCube(s, false))
			}
		}
		b.AddFairness(e.FairNames[i], set)
	}
	return b
}

// StateIndex decodes the binary encoding used by FromExplicit.
func StateIndex(st State) int {
	idx := 0
	for i, v := range st {
		if v {
			idx |= 1 << i
		}
	}
	return idx
}

// IndexState encodes a state index over nbits variables.
func IndexState(idx, nbits int) State {
	st := make(State, nbits)
	for i := 0; i < nbits; i++ {
		st[i] = idx>>i&1 == 1
	}
	return st
}

// ToExplicit enumerates the reachable fragment of a symbolic structure
// into an explicit one. It fails if more than limit states are reachable
// (limit <= 0 means no limit). Atom labels are taken from every
// registered boolean atom; fairness constraints carry over.
func (s *Symbolic) ToExplicit(limit int) (*Explicit, map[string]int, error) {
	return s.ToExplicitBounded(limit, 0)
}

// ToExplicitBounded is ToExplicit with an additional edge budget:
// highly nondeterministic models (e.g. speed-independent circuits,
// where any subset of excited gates may fire in one step) can have
// manageable state counts but astronomically many edges, and the edge
// bound makes the explosion fail fast. edgeLimit <= 0 means no bound.
func (s *Symbolic) ToExplicitBounded(limit, edgeLimit int) (*Explicit, map[string]int, error) {
	index := map[string]int{}
	var states []State

	add := func(st State) int {
		k := st.Key()
		if i, ok := index[k]; ok {
			return i
		}
		i := len(states)
		index[k] = i
		states = append(states, st)
		return i
	}

	inits := s.EnumStates(s.Init, limit+1)
	if limit > 0 && len(inits) > limit {
		return nil, nil, fmt.Errorf("kripke: more than %d initial states", limit)
	}
	queue := []int{}
	for _, st := range inits {
		queue = append(queue, add(st))
	}
	type edge struct{ u, v int }
	var edges []edge
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		if qi%1024 == 0 {
			s.M.MaybeGC()
		}
		succLimit := 0
		if edgeLimit > 0 {
			// Bound the per-state enumeration so a single state with an
			// astronomical out-degree cannot blow memory before the edge
			// budget check fires.
			succLimit = edgeLimit - len(edges) + 2
		}
		for _, succ := range s.Successors(states[u], succLimit) {
			before := len(states)
			v := add(succ)
			if v == before { // new state
				if limit > 0 && len(states) > limit {
					return nil, nil, fmt.Errorf("kripke: more than %d reachable states", limit)
				}
				queue = append(queue, v)
			}
			edges = append(edges, edge{u, v})
			if edgeLimit > 0 && len(edges) > edgeLimit {
				return nil, nil, fmt.Errorf("kripke: more than %d edges", edgeLimit)
			}
		}
	}

	e := NewExplicit(len(states))
	for _, ed := range edges {
		e.AddEdge(ed.u, ed.v)
	}
	for i := range inits {
		e.AddInit(i)
	}
	for name, set := range s.atoms {
		for i, st := range states {
			if s.Holds(set, st) {
				e.Labels[i][name] = true
			}
		}
	}
	for fi, fset := range s.Fair {
		sel := make([]bool, len(states))
		for i, st := range states {
			sel[i] = s.Holds(fset, st)
		}
		e.AddFairSet(s.FairNames[fi], sel)
	}
	return e, index, nil
}
