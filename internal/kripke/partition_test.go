package kripke

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
)

// buildPartitionedCounter builds an n-bit ripple counter through the
// Builder so the clusters get installed automatically.
func buildPartitionedCounter(n int) (*Symbolic, *Builder) {
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	b := NewBuilder(names)
	m := b.S.M
	carry := bdd.True
	for i := 0; i < n; i++ {
		b.InitValue(names[i], false)
		cur := b.Cur(names[i])
		b.NextFunc(names[i], m.Xor(cur, carry))
		carry = m.And(carry, cur)
	}
	return b.Finish(), b
}

func TestPartitionInstalledByBuilder(t *testing.T) {
	s, _ := buildPartitionedCounter(4)
	if !s.HasClusters() {
		t.Fatal("builder should install clusters")
	}
	if s.NumClusters() != 4 {
		t.Fatalf("want 4 clusters, got %d", s.NumClusters())
	}
}

func TestPartitionedImageEqualsMonolithic(t *testing.T) {
	s, _ := buildPartitionedCounter(5)
	m := s.M
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		// random state set over current vars
		set := bdd.False
		for i := 0; i < 3; i++ {
			cube := bdd.True
			for _, v := range s.Vars {
				switch r.Intn(3) {
				case 0:
					cube = m.And(cube, m.Var(v.Cur))
				case 1:
					cube = m.And(cube, m.NVar(v.Cur))
				}
			}
			set = m.Or(set, cube)
		}
		imgPart := s.Image(set)
		prePart := s.Preimage(set)

		// compare against the monolithic path
		s.EnablePartition(false)
		imgMono := s.Image(set)
		preMono := s.Preimage(set)
		s.EnablePartition(true)

		if imgPart != imgMono {
			t.Fatalf("trial %d: partitioned Image differs", trial)
		}
		if prePart != preMono {
			t.Fatalf("trial %d: partitioned Preimage differs", trial)
		}
	}
}

func TestPartitionedWithFreeVariables(t *testing.T) {
	// y is a free input (no next constraint): both paths must agree.
	b := NewBuilder([]string{"x", "y"})
	m := b.S.M
	b.InitValue("x", false)
	b.NextFunc("x", m.Or(b.Cur("x"), b.Cur("y")))
	b.ConstrainTrans(bdd.True) // second (trivial) cluster to trigger partitioning
	s := b.Finish()
	if !s.HasClusters() {
		t.Skip("partition not installed for single nontrivial cluster")
	}
	set := m.Var(s.Vars[0].Cur) // x = 1
	pre1 := s.Preimage(set)
	img1 := s.Image(set)
	s.EnablePartition(false)
	pre2 := s.Preimage(set)
	img2 := s.Image(set)
	s.EnablePartition(true)
	if pre1 != pre2 || img1 != img2 {
		t.Fatal("free-variable quantification differs between paths")
	}
}

func TestSetClustersRemoval(t *testing.T) {
	s, _ := buildPartitionedCounter(3)
	if !s.HasClusters() {
		t.Fatal("expected clusters")
	}
	s.SetClusters(nil)
	if s.HasClusters() {
		t.Fatal("clusters should be removed")
	}
}

func TestAffinityMergeDropsTrivialAndSubsetClusters(t *testing.T) {
	b := NewBuilder([]string{"x", "y", "z"})
	m := b.S.M
	b.NextFunc("x", m.And(b.Cur("y"), b.Cur("z")))
	b.NextFunc("y", b.Cur("x"))
	// Trivial conjunct and a duplicate: both must vanish in the merge.
	b.ConstrainTrans(bdd.True)
	dup := m.Eq(b.Next("y"), b.Cur("x"))
	b.ConstrainTrans(dup)
	// A cluster whose support is a subset of the x-assignment's support
	// (mentions only cur y): folded into it, not scheduled separately.
	b.ConstrainTrans(m.Or(b.Cur("y"), m.Not(b.Cur("y"))))
	s := b.Finish()
	if !s.HasClusters() {
		t.Fatal("expected clusters")
	}
	if n := s.NumClusters(); n != 2 {
		t.Fatalf("affinity merge should leave 2 clusters, got %d", n)
	}
}

func TestScheduleCoversAllQuantificationVars(t *testing.T) {
	s, _ := buildPartitionedCounter(5)
	m := s.M
	p := s.Partition()
	if p == nil {
		t.Fatal("no partition")
	}
	for _, dir := range []struct {
		name  string
		sched schedule
		qvar  func(StateVar) int
	}{
		{"pre", p.pre, func(v StateVar) int { return v.Next }},
		{"img", p.img, func(v StateVar) int { return v.Cur }},
	} {
		if len(dir.sched.order) != len(p.clusters) {
			t.Fatalf("%s: order misses clusters", dir.name)
		}
		seen := map[int]bool{}
		for _, ci := range dir.sched.order {
			if seen[ci] {
				t.Fatalf("%s: cluster %d scheduled twice", dir.name, ci)
			}
			seen[ci] = true
		}
		// Every quantification variable must appear in exactly one cube
		// (or in free), and never before its last-use cluster.
		quantified := map[int]int{} // var -> schedule position
		for k, cube := range dir.sched.cubes {
			for _, v := range m.CubeVars(cube) {
				if old, dup := quantified[v]; dup {
					t.Fatalf("%s: var %d quantified at %d and %d", dir.name, v, old, k)
				}
				quantified[v] = k
			}
		}
		for _, v := range m.CubeVars(dir.sched.free) {
			if _, dup := quantified[v]; dup {
				t.Fatalf("%s: free var %d also in a cube", dir.name, v)
			}
			quantified[v] = -1
		}
		for _, sv := range s.Vars {
			if _, ok := quantified[dir.qvar(sv)]; !ok {
				t.Fatalf("%s: variable %s never quantified", dir.name, sv.Name)
			}
		}
		// Soundness: a variable quantified at position k must not occur in
		// any cluster scheduled after k.
		for k, cube := range dir.sched.cubes {
			for _, v := range m.CubeVars(cube) {
				for later := k + 1; later < len(dir.sched.order); later++ {
					for _, sv := range m.Support(p.clusters[dir.sched.order[later]]) {
						if sv == v {
							t.Fatalf("%s: var %d quantified at %d but used by cluster at %d", dir.name, v, k, later)
						}
					}
				}
			}
		}
	}
}

func TestEnablePartitionToggle(t *testing.T) {
	s, _ := buildPartitionedCounter(4)
	if !s.PartitionEnabled() {
		t.Fatal("partition should start enabled")
	}
	set := s.M.Var(s.Vars[0].Cur)
	pre1 := s.Preimage(set)
	s.EnablePartition(false)
	if s.PartitionEnabled() {
		t.Fatal("toggle off failed")
	}
	if !s.HasClusters() {
		t.Fatal("toggle must not discard the partition")
	}
	pre2 := s.Preimage(set)
	s.EnablePartition(true)
	pre3 := s.Preimage(set)
	if pre1 != pre2 || pre2 != pre3 {
		t.Fatal("toggling the partition changed Preimage")
	}
}

func TestRelStatsAccumulate(t *testing.T) {
	s, _ := buildPartitionedCounter(4)
	s.ResetRelStats()
	s.Reachable()
	rs := s.RelStats()
	if rs.ImageCalls == 0 {
		t.Fatal("image calls not counted")
	}
	if rs.ClusterSteps == 0 {
		t.Fatal("cluster steps not counted on the partitioned path")
	}
	if rs.PeakLiveNodes == 0 {
		t.Fatal("peak live nodes not sampled")
	}
	s.EnablePartition(false)
	s.ResetRelStats()
	s.Preimage(bdd.True)
	rs = s.RelStats()
	if rs.PreimageCalls != 1 || rs.ClusterSteps != 0 {
		t.Fatalf("monolithic path stats wrong: %+v", rs)
	}
}

func TestSharedDeadlockComputation(t *testing.T) {
	// x flips forever, but from x=1 there is also an escape to a sink
	// with no successors: next(x) has no feasible value when y=1.
	b := NewBuilder([]string{"x", "y"})
	m := b.S.M
	b.InitValue("x", false)
	b.InitValue("y", false)
	// y latches once set nondeterministically; when y holds, no
	// transition exists (deadlock): Trans ∧ y = false.
	b.ConstrainTrans(m.Or(m.Eq(b.Next("x"), m.Not(b.Cur("x"))), b.Cur("y")))
	b.ConstrainTrans(m.Not(b.Cur("y")))
	s := b.Finish()
	if s.IsTotal() {
		t.Fatal("structure with y=1 deadlock must not be total")
	}
	dead := s.DeadlockStates()
	if dead == bdd.False {
		t.Fatal("deadlock states missing")
	}
	if !s.Holds(dead, State{false, true}) {
		t.Fatal("state y=1 should be deadlocked")
	}
	if s.Holds(dead, State{false, false}) {
		t.Fatal("state y=0 is live")
	}
	// The ∃v′.Trans computation is shared and cached.
	rs0 := s.RelStats()
	s.IsTotal()
	s.DeadlockStates()
	if s.RelStats().PreimageCalls != rs0.PreimageCalls {
		t.Fatal("hasSuccessors must be cached after the first computation")
	}
}

func TestPartitionedReachableAgrees(t *testing.T) {
	s, _ := buildPartitionedCounter(6)
	reachPart, _ := s.Reachable()
	part := s.part
	s.part = nil
	reachMono, _ := s.Reachable()
	s.part = part
	if reachPart != reachMono {
		t.Fatal("reachability differs between partitioned and monolithic")
	}
	if got := s.CountStates(reachPart); got != 64 {
		t.Fatalf("counter reachable = %v, want 64", got)
	}
}
