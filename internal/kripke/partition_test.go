package kripke

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
)

// buildPartitionedCounter builds an n-bit ripple counter through the
// Builder so the clusters get installed automatically.
func buildPartitionedCounter(n int) (*Symbolic, *Builder) {
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	b := NewBuilder(names)
	m := b.S.M
	carry := bdd.True
	for i := 0; i < n; i++ {
		b.InitValue(names[i], false)
		cur := b.Cur(names[i])
		b.NextFunc(names[i], m.Xor(cur, carry))
		carry = m.And(carry, cur)
	}
	return b.Finish(), b
}

func TestPartitionInstalledByBuilder(t *testing.T) {
	s, _ := buildPartitionedCounter(4)
	if !s.HasClusters() {
		t.Fatal("builder should install clusters")
	}
	if s.NumClusters() != 4 {
		t.Fatalf("want 4 clusters, got %d", s.NumClusters())
	}
}

func TestPartitionedImageEqualsMonolithic(t *testing.T) {
	s, _ := buildPartitionedCounter(5)
	m := s.M
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		// random state set over current vars
		set := bdd.False
		for i := 0; i < 3; i++ {
			cube := bdd.True
			for _, v := range s.Vars {
				switch r.Intn(3) {
				case 0:
					cube = m.And(cube, m.Var(v.Cur))
				case 1:
					cube = m.And(cube, m.NVar(v.Cur))
				}
			}
			set = m.Or(set, cube)
		}
		imgPart := s.Image(set)
		prePart := s.Preimage(set)

		// compare against the monolithic path
		part := s.part
		s.part = nil
		imgMono := s.Image(set)
		preMono := s.Preimage(set)
		s.part = part

		if imgPart != imgMono {
			t.Fatalf("trial %d: partitioned Image differs", trial)
		}
		if prePart != preMono {
			t.Fatalf("trial %d: partitioned Preimage differs", trial)
		}
	}
}

func TestPartitionedWithFreeVariables(t *testing.T) {
	// y is a free input (no next constraint): both paths must agree.
	b := NewBuilder([]string{"x", "y"})
	m := b.S.M
	b.InitValue("x", false)
	b.NextFunc("x", m.Or(b.Cur("x"), b.Cur("y")))
	b.ConstrainTrans(bdd.True) // second (trivial) cluster to trigger partitioning
	s := b.Finish()
	if !s.HasClusters() {
		t.Skip("partition not installed for single nontrivial cluster")
	}
	set := m.Var(s.Vars[0].Cur) // x = 1
	part := s.part
	pre1 := s.Preimage(set)
	img1 := s.Image(set)
	s.part = nil
	pre2 := s.Preimage(set)
	img2 := s.Image(set)
	s.part = part
	if pre1 != pre2 || img1 != img2 {
		t.Fatal("free-variable quantification differs between paths")
	}
}

func TestSetClustersRemoval(t *testing.T) {
	s, _ := buildPartitionedCounter(3)
	if !s.HasClusters() {
		t.Fatal("expected clusters")
	}
	s.SetClusters(nil)
	if s.HasClusters() {
		t.Fatal("clusters should be removed")
	}
}

func TestPartitionedReachableAgrees(t *testing.T) {
	s, _ := buildPartitionedCounter(6)
	reachPart, _ := s.Reachable()
	part := s.part
	s.part = nil
	reachMono, _ := s.Reachable()
	s.part = part
	if reachPart != reachMono {
		t.Fatal("reachability differs between partitioned and monolithic")
	}
	if got := s.CountStates(reachPart); got != 64 {
		t.Fatalf("counter reachable = %v, want 64", got)
	}
}
