// Package kripke provides the state-transition models the checker runs
// on: symbolic structures whose transition relation R(v, v′) and state
// sets are BDDs (Section 4 of the paper), explicit structures for the
// baseline checker and for cross-validation, and bridges between the
// two representations.
package kripke

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/ctl"
)

// StateVar is one boolean state variable with its current-state and
// next-state BDD variable indices. Current and next copies are
// interleaved in the BDD order (cur at level 2i, next at 2i+1), the
// standard arrangement for image computation.
type StateVar struct {
	Name string
	Cur  int
	Next int
}

// Symbolic is a labeled state-transition graph M = (AP, S, L, N, S0)
// represented with BDDs: states are assignments to the boolean state
// variables, N is the BDD Trans over current and next variables, and S0
// is the BDD Init over current variables.
type Symbolic struct {
	M    *bdd.Manager
	Vars []StateVar

	Init bdd.Ref // S0(v)

	// trans is the monolithic R(v, v′), materialized lazily through
	// Trans() when the structure carries a conjunctive partition: on
	// large models the conjunction of the clusters can be exponentially
	// bigger than any factor, and the partitioned image computation
	// never needs it.
	trans      bdd.Ref
	transValid bool

	// Fair are the fairness-constraint state sets H = {h_1, ..., h_n}
	// (Section 5); FairNames are their display names.
	Fair      []bdd.Ref
	FairNames []string

	// Invar restricts the state space (conjoined into Trans on both
	// sides and into Init by the builder); kept for reporting.
	Invar bdd.Ref

	atoms    map[string]bdd.Ref
	eqAtoms  map[string]func(value string) (bdd.Ref, error)
	curCube  bdd.Ref
	nextCube bdd.Ref
	toNext   *bdd.Permutation
	toCur    *bdd.Permutation

	part     *Partition // optional conjunctive transition partition
	partOff  bool       // EnablePartition(false): keep it but bypass it
	disj     *Disjunct  // optional disjunctive transition partition
	disjOn   bool       // EnableDisjunct(true): use the disjunctive image
	workers  int        // goroutines for the disjunctive image (<=1: sequential)
	relStats RelStats
	stats0   bdd.Stats // manager counters at the last ResetRelStats (cache-rate deltas)

	hasSucc      bdd.Ref // cached ∃v′.Trans (IsTotal, DeadlockStates)
	hasSuccValid bool

	// Reachable-state cache (opt-in, EnableReachableCache): the fixpoint
	// result is kept — protected and reorder-safe — and returned by every
	// later Reachable call. This is the session-reuse path of a
	// long-running checking service, and SetReachable is its warm-start
	// entry: a set restored from disk replaces the fixpoint entirely.
	reach        bdd.Ref
	reachIters   int
	reachValid   bool
	reachCaching bool
}

// NewSymbolic allocates a symbolic structure with the given state
// variable names. Transition relation and initial states start as True
// (callers and builders conjoin constraints in). Manager options (e.g.
// bdd.DisableComplementEdges for the structural-representation oracle)
// pass through to the underlying bdd.New.
func NewSymbolic(names []string, opts ...bdd.Option) *Symbolic {
	m := bdd.New(2*len(names), opts...)
	s := &Symbolic{
		M:          m,
		trans:      bdd.True,
		transValid: true,
		Init:       bdd.True,
		Invar:      bdd.True,
		atoms:      map[string]bdd.Ref{},
		eqAtoms:    map[string]func(string) (bdd.Ref, error){},
	}
	for i, n := range names {
		s.Vars = append(s.Vars, StateVar{Name: n, Cur: 2 * i, Next: 2*i + 1})
		s.atoms[n] = m.Protect(m.Var(2 * i))
		// Each current/next pair sifts as one block: splitting a pair
		// explodes the transition relation, so reordering never considers
		// it.
		m.GroupVars(2*i, 2*i+1)
	}
	s.finishVars()
	m.OnReorder(s.rewriteRefs)
	return s
}

// rewriteRefs is the structure's reorder hook: every long-lived Ref the
// structure holds — initial states, invariant, fairness sets, atoms,
// quantification cubes, the monolithic relation, and the partition's
// clusters and schedule cubes — is rewritten in place after a reorder.
func (s *Symbolic) rewriteRefs(translate func(bdd.Ref) bdd.Ref) {
	s.Init = translate(s.Init)
	s.Invar = translate(s.Invar)
	if s.transValid {
		s.trans = translate(s.trans)
	}
	for i := range s.Fair {
		s.Fair[i] = translate(s.Fair[i])
	}
	for k, v := range s.atoms {
		s.atoms[k] = translate(v)
	}
	s.curCube = translate(s.curCube)
	s.nextCube = translate(s.nextCube)
	if s.hasSuccValid {
		s.hasSucc = translate(s.hasSucc)
	}
	if s.reachValid {
		s.reach = translate(s.reach)
	}
	if p := s.part; p != nil {
		for i := range p.clusters {
			p.clusters[i] = translate(p.clusters[i])
		}
		for i := range p.pre.cubes {
			p.pre.cubes[i] = translate(p.pre.cubes[i])
		}
		p.pre.free = translate(p.pre.free)
		for i := range p.img.cubes {
			p.img.cubes[i] = translate(p.img.cubes[i])
		}
		p.img.free = translate(p.img.free)
	}
	if d := s.disj; d != nil {
		for i := range d.comps {
			c := &d.comps[i]
			c.rel = translate(c.rel)
			c.imgCube = translate(c.imgCube)
			c.imgFree = translate(c.imgFree)
			c.preCube = translate(c.preCube)
			c.preFree = translate(c.preFree)
		}
	}
}

// finishVars (re)computes the cubes and renaming permutations; called
// after the variable set is fixed.
func (s *Symbolic) finishVars() {
	cur := make([]int, len(s.Vars))
	next := make([]int, len(s.Vars))
	perm := make([]int, s.M.NumVars())
	for i := range perm {
		perm[i] = i
	}
	for i, v := range s.Vars {
		cur[i] = v.Cur
		next[i] = v.Next
		perm[v.Cur] = v.Next
		perm[v.Next] = v.Cur
	}
	s.curCube = s.M.Protect(s.M.Cube(cur))
	s.nextCube = s.M.Protect(s.M.Cube(next))
	p := s.M.NewPermutation(perm)
	s.toNext = p
	s.toCur = p // the swap is an involution
}

// NumVars returns the number of state variables (not BDD variables).
func (s *Symbolic) NumVars() int { return len(s.Vars) }

// CurVars returns the BDD variable indices of the current-state copy.
func (s *Symbolic) CurVars() []int {
	out := make([]int, len(s.Vars))
	for i, v := range s.Vars {
		out[i] = v.Cur
	}
	return out
}

// NextVars returns the BDD variable indices of the next-state copy.
func (s *Symbolic) NextVars() []int {
	out := make([]int, len(s.Vars))
	for i, v := range s.Vars {
		out[i] = v.Next
	}
	return out
}

// CurCube returns the cube of all current-state variables.
func (s *Symbolic) CurCube() bdd.Ref { return s.curCube }

// NextCube returns the cube of all next-state variables.
func (s *Symbolic) NextCube() bdd.Ref { return s.nextCube }

// ToNext renames a current-state set to next-state variables.
func (s *Symbolic) ToNext(f bdd.Ref) bdd.Ref { return s.toNext.Apply(f) }

// ToCur renames a next-state set to current-state variables.
func (s *Symbolic) ToCur(f bdd.Ref) bdd.Ref { return s.toCur.Apply(f) }

// RegisterAtom makes the boolean atomic proposition name denote the
// state set f (over current variables). The set is protected against
// garbage collection for the structure's lifetime.
func (s *Symbolic) RegisterAtom(name string, f bdd.Ref) {
	if old, ok := s.atoms[name]; ok {
		s.M.Unprotect(old)
	}
	s.atoms[name] = s.M.Protect(f)
}

// RegisterEqAtom installs a resolver for "name = value" atoms over a
// finite-domain variable.
func (s *Symbolic) RegisterEqAtom(name string, resolve func(value string) (bdd.Ref, error)) {
	s.eqAtoms[name] = resolve
}

// AtomSet resolves an atomic CTL formula (KAtom, KEq or KNeq) to the
// state set it denotes.
func (s *Symbolic) AtomSet(f *ctl.Formula) (bdd.Ref, error) {
	switch f.Kind {
	case ctl.KAtom:
		if set, ok := s.atoms[f.Name]; ok {
			return set, nil
		}
		return bdd.False, fmt.Errorf("kripke: unknown atomic proposition %q", f.Name)
	case ctl.KEq, ctl.KNeq:
		// Comparison of two boolean atoms: "x = y" as equivalence.
		if lset, okl := s.atoms[f.Name]; okl {
			if rset, okr := s.atoms[f.Value]; okr {
				eq := s.M.Eq(lset, rset)
				if f.Kind == ctl.KNeq {
					return s.M.Not(eq), nil
				}
				return eq, nil
			}
		}
		res, ok := s.eqAtoms[f.Name]
		if !ok {
			// Allow boolean atoms compared against 0/1/true/false.
			if set, okb := s.atoms[f.Name]; okb {
				var want bool
				switch f.Value {
				case "1", "true", "TRUE":
					want = true
				case "0", "false", "FALSE":
					want = false
				default:
					return bdd.False, fmt.Errorf("kripke: %q is boolean; cannot compare with %q", f.Name, f.Value)
				}
				if f.Kind == ctl.KNeq {
					want = !want
				}
				if want {
					return set, nil
				}
				return s.M.Not(set), nil
			}
			return bdd.False, fmt.Errorf("kripke: unknown variable %q in comparison", f.Name)
		}
		set, err := res(f.Value)
		if err != nil {
			return bdd.False, err
		}
		if f.Kind == ctl.KNeq {
			return s.M.Not(set), nil
		}
		return set, nil
	}
	return bdd.False, fmt.Errorf("kripke: AtomSet on non-atomic formula %s", f)
}

// Trans returns the monolithic transition relation R(v, v′). When the
// structure was built through a partition — conjunctive clusters or
// disjunctive components — the monolithic BDD is not constructed up
// front: the partitioned image computations never need it, and on large
// models it blows up. It is materialized on first demand and cached,
// from the clusters when a conjunctive partition exists, otherwise as
// the union of the disjunctive components.
func (s *Symbolic) Trans() bdd.Ref {
	if !s.transValid {
		m := s.M
		var acc bdd.Ref
		if s.part != nil {
			acc = m.Protect(bdd.True)
			for _, c := range s.part.clusters {
				next := m.Protect(m.And(acc, c))
				m.Unprotect(acc)
				acc = next
				m.MaybeGC()
			}
		} else if s.disj != nil {
			acc = m.Protect(bdd.False)
			for i := range s.disj.comps {
				next := m.Protect(m.Or(acc, s.disj.comps[i].rel))
				m.Unprotect(acc)
				acc = next
				m.MaybeGC()
			}
		} else {
			acc = m.Protect(bdd.True)
		}
		s.trans = acc
		s.transValid = true
	}
	return s.trans
}

// SetTrans installs f as the monolithic transition relation and
// protects it from garbage collection.
func (s *Symbolic) SetTrans(f bdd.Ref) {
	if s.transValid {
		s.M.Unprotect(s.trans)
	}
	s.trans = s.M.Protect(f)
	s.transValid = true
}

// Image returns the set of successors of the states in from:
// { t | ∃s ∈ from : R(s,t) }, expressed over current variables. When a
// conjunctive partition is installed (SetClusters) the relational
// product is computed cluster by cluster with early quantification.
func (s *Symbolic) Image(from bdd.Ref) bdd.Ref {
	s.relStats.ImageCalls++
	if s.DisjunctEnabled() {
		return s.imageDisjunct(from)
	}
	if s.PartitionEnabled() {
		return s.imagePart(from)
	}
	// Registering the argument keeps it valid across Trans(), which may
	// materialize the monolithic relation (GC) or hit a reorder safe
	// point.
	id := s.M.RegisterRefs(&from)
	trans := s.Trans()
	s.M.Unregister(id)
	next := s.M.AndExists(from, trans, s.curCube)
	s.noteLiveNodes()
	return s.ToCur(next)
}

// Preimage returns EX to: the set of states with some successor in to.
func (s *Symbolic) Preimage(to bdd.Ref) bdd.Ref {
	s.relStats.PreimageCalls++
	if s.DisjunctEnabled() {
		return s.preimageDisjunct(to)
	}
	if s.PartitionEnabled() {
		return s.preimagePart(to)
	}
	id := s.M.RegisterRefs(&to)
	trans := s.Trans()
	s.M.Unregister(id)
	next := s.ToNext(to)
	res := s.M.AndExists(trans, next, s.nextCube)
	s.noteLiveNodes()
	return res
}

// hasSuccessors returns ∃v′.Trans — the states with at least one
// successor — computed once (through the partitioned path when one is
// installed, since Preimage(true) is exactly this set) and cached for
// the structure's lifetime. Shared by IsTotal and DeadlockStates.
func (s *Symbolic) hasSuccessors() bdd.Ref {
	if !s.hasSuccValid {
		s.hasSucc = s.M.Protect(s.Preimage(bdd.True))
		s.hasSuccValid = true
	}
	return s.hasSucc
}

// Reachable computes the set of states reachable from Init by a
// breadth-first least fixpoint, returning the set and the number of
// frontier iterations. Garbage is collected opportunistically between
// frontier steps on large models. With the reachable cache enabled the
// fixpoint runs at most once; repeat calls return the cached set and
// count as ReachableReuses in RelStats.
func (s *Symbolic) Reachable() (bdd.Ref, int) {
	if s.reachValid {
		s.relStats.ReachableReuses++
		return s.reach, s.reachIters
	}
	reached, iters := s.reachableCompute()
	if s.reachCaching {
		s.reach = s.M.Protect(reached)
		s.reachIters = iters
		s.reachValid = true
	}
	return reached, iters
}

// EnableReachableCache makes the next Reachable result stick for the
// structure's lifetime. Off by default: one-shot checking protects and
// releases the set itself, and tests exercising the fixpoint repeatedly
// want it recomputed.
func (s *Symbolic) EnableReachableCache() { s.reachCaching = true }

// SetReachable seeds the reachable cache with an externally computed
// set — the warm-start path, where the set was restored from a disk
// record rather than recomputed. iters is the frontier count reported
// alongside it.
func (s *Symbolic) SetReachable(r bdd.Ref, iters int) {
	if s.reachValid {
		s.M.Unprotect(s.reach)
	}
	s.reach = s.M.Protect(r)
	s.reachIters = iters
	s.reachValid = true
	s.reachCaching = true
}

// ReachableCached peeks at the cache without computing anything.
func (s *Symbolic) ReachableCached() (bdd.Ref, int, bool) {
	return s.reach, s.reachIters, s.reachValid
}

func (s *Symbolic) reachableCompute() (bdd.Ref, int) {
	if s.DisjunctEnabled() {
		return s.reachableDisjunct()
	}
	m := s.M
	reached := m.Protect(s.Init)
	frontier := m.Protect(s.Init)
	id := m.RegisterRefs(&reached, &frontier)
	iters := 0
	for frontier != bdd.False {
		iters++
		m.ReorderIfNeeded()
		img := s.Image(frontier)
		m.Unprotect(frontier)
		frontier = m.Protect(m.Diff(img, reached))
		m.Unprotect(reached)
		reached = m.Protect(m.Or(reached, frontier))
		m.MaybeGC()
	}
	m.Unregister(id)
	m.Unprotect(frontier)
	m.Unprotect(reached)
	return reached, iters
}

// CountStates returns the number of states in the set (over the state
// variables of this structure).
func (s *Symbolic) CountStates(set bdd.Ref) float64 {
	// Quantify out any next-state variables, then count over cur vars.
	over := s.M.Exists(set, s.nextCube)
	return s.M.SatCount(over, s.M.NumVars()) / pow2(len(s.Vars))
}

func pow2(n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= 2
	}
	return r
}

// State is a concrete state: the values of the state variables in
// declaration order.
type State []bool

// Key packs a state into a comparable string for map keys.
func (st State) Key() string {
	b := make([]byte, len(st))
	for i, v := range st {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// PickState extracts one concrete state from a non-empty set,
// deterministically. Returns nil if the set is empty.
func (s *Symbolic) PickState(set bdd.Ref) State {
	vals := s.M.PickOne(set, s.CurVars())
	if vals == nil {
		return nil
	}
	return State(vals)
}

// StateCube returns the BDD cube (over current variables) of a single
// concrete state.
func (s *Symbolic) StateCube(st State) bdd.Ref {
	return s.M.MintermCube(s.CurVars(), st)
}

// Holds reports whether the concrete state st belongs to the set.
func (s *Symbolic) Holds(set bdd.Ref, st State) bool {
	env := make([]bool, s.M.NumVars())
	for i, v := range s.Vars {
		env[v.Cur] = st[i]
	}
	return s.M.Eval(set, env)
}

// HasEdge reports whether the transition relation contains the edge
// from -> to.
func (s *Symbolic) HasEdge(from, to State) bool {
	env := make([]bool, s.M.NumVars())
	for i, v := range s.Vars {
		env[v.Cur] = from[i]
		env[v.Next] = to[i]
	}
	// With a partition installed, evaluate the factors pointwise — every
	// conjunct must accept the edge, or some disjunct must — so trace
	// validation never forces the monolithic BDD into existence.
	if !s.transValid {
		if s.part != nil {
			for _, c := range s.part.clusters {
				if !s.M.Eval(c, env) {
					return false
				}
			}
			return true
		}
		if s.disj != nil {
			for i := range s.disj.comps {
				if s.M.Eval(s.disj.comps[i].rel, env) {
					return true
				}
			}
			return false
		}
	}
	return s.M.Eval(s.Trans(), env)
}

// Successors enumerates the concrete successors of st, up to limit
// (limit <= 0 means no limit).
func (s *Symbolic) Successors(st State, limit int) []State {
	img := s.Image(s.StateCube(st))
	return s.EnumStates(img, limit)
}

// EnumStates lists the concrete states of a set, up to limit
// (limit <= 0 means no limit). The order is deterministic.
func (s *Symbolic) EnumStates(set bdd.Ref, limit int) []State {
	var out []State
	s.M.AllSat(set, s.CurVars(), func(a []bool) bool {
		st := make(State, len(a))
		copy(st, a)
		out = append(out, st)
		return limit <= 0 || len(out) < limit
	})
	return out
}

// FormatState renders a state as "name=0/1" pairs.
func (s *Symbolic) FormatState(st State) string {
	parts := make([]string, len(st))
	for i, v := range s.Vars {
		val := "0"
		if st[i] {
			val = "1"
		}
		parts[i] = v.Name + "=" + val
	}
	return strings.Join(parts, " ")
}

// VarNames returns the state variable names in declaration order.
func (s *Symbolic) VarNames() []string {
	out := make([]string, len(s.Vars))
	for i, v := range s.Vars {
		out[i] = v.Name
	}
	return out
}

// AddFairness appends a fairness-constraint state set.
func (s *Symbolic) AddFairness(name string, set bdd.Ref) {
	s.Fair = append(s.Fair, s.M.Protect(set))
	s.FairNames = append(s.FairNames, name)
}

// WithFairness returns a shallow view of the structure with the given
// fairness constraints in place of the declared ones. The manager, the
// transition relation and the atoms are shared; only the fairness
// constraints differ. Used by the CTL* fragment checker (Section 7),
// which turns GF-terms into fairness constraints on the fly.
//
// A view is not registered with the reorder registry: its copied Refs do
// not survive a dynamic reorder. Callers must pause automatic reordering
// (bdd.Manager.PauseAutoReorder) for the view's lifetime, as the CTL*
// checker does.
func (s *Symbolic) WithFairness(sets []bdd.Ref, names []string) *Symbolic {
	view := *s
	view.Fair = append([]bdd.Ref(nil), sets...)
	view.FairNames = append([]string(nil), names...)
	return &view
}

// AtomNames returns the registered boolean atom names, sorted.
func (s *Symbolic) AtomNames() []string {
	out := make([]string, 0, len(s.atoms))
	for n := range s.atoms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
