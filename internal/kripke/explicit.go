package kripke

import (
	"fmt"
	"math/rand"
	"sort"
)

// Explicit is a labeled state-transition graph in adjacency-list form,
// used by the explicit-state baseline checker (the EMC of Section 4) and
// as an oracle in cross-validation tests.
type Explicit struct {
	N      int
	Succ   [][]int
	Labels []map[string]bool // atoms true in each state
	Init   []int
	// Fair[i] is the i-th fairness constraint as a state set.
	Fair      [][]bool
	FairNames []string
}

// NewExplicit creates an explicit structure with n states and no edges.
func NewExplicit(n int) *Explicit {
	e := &Explicit{
		N:      n,
		Succ:   make([][]int, n),
		Labels: make([]map[string]bool, n),
	}
	for i := range e.Labels {
		e.Labels[i] = map[string]bool{}
	}
	return e
}

// AddEdge inserts the edge u -> v (idempotent).
func (e *Explicit) AddEdge(u, v int) {
	for _, w := range e.Succ[u] {
		if w == v {
			return
		}
	}
	e.Succ[u] = append(e.Succ[u], v)
}

// Label marks atom as true in state s.
func (e *Explicit) Label(s int, atom string) { e.Labels[s][atom] = true }

// AddInit marks s as an initial state.
func (e *Explicit) AddInit(s int) { e.Init = append(e.Init, s) }

// AddFairSet appends a fairness constraint given as a state set.
func (e *Explicit) AddFairSet(name string, set []bool) {
	if len(set) != e.N {
		panic("kripke: fairness set size mismatch")
	}
	e.Fair = append(e.Fair, set)
	e.FairNames = append(e.FairNames, name)
}

// MakeTotal adds a self-loop to every deadlocked state.
func (e *Explicit) MakeTotal() {
	for s := 0; s < e.N; s++ {
		if len(e.Succ[s]) == 0 {
			e.AddEdge(s, s)
		}
	}
}

// IsTotal reports whether every state has a successor.
func (e *Explicit) IsTotal() bool {
	for s := 0; s < e.N; s++ {
		if len(e.Succ[s]) == 0 {
			return false
		}
	}
	return true
}

// Pred computes the predecessor lists (reverse adjacency).
func (e *Explicit) Pred() [][]int {
	pred := make([][]int, e.N)
	for u, succs := range e.Succ {
		for _, v := range succs {
			pred[v] = append(pred[v], u)
		}
	}
	return pred
}

// AtomNames returns all atom names used anywhere, sorted.
func (e *Explicit) AtomNames() []string {
	set := map[string]bool{}
	for _, lbl := range e.Labels {
		for a := range lbl {
			set[a] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// RandomExplicit generates a random total structure with n states,
// average out-degree deg, the given atom names (each true in a state
// with probability 1/2) and nfair random fairness constraints (each
// state included with probability fairDensity).
func RandomExplicit(r *rand.Rand, n int, deg float64, atoms []string, nfair int, fairDensity float64) *Explicit {
	e := NewExplicit(n)
	for s := 0; s < n; s++ {
		k := 1 + r.Intn(int(2*deg))
		for j := 0; j < k; j++ {
			e.AddEdge(s, r.Intn(n))
		}
		for _, a := range atoms {
			if r.Intn(2) == 0 {
				e.Label(s, a)
			}
		}
	}
	e.AddInit(r.Intn(n))
	// guarantee every atom labels at least one state so that the
	// symbolic bridge registers it
	for _, a := range atoms {
		found := false
		for s := 0; s < n && !found; s++ {
			found = e.Labels[s][a]
		}
		if !found {
			e.Label(r.Intn(n), a)
		}
	}
	for i := 0; i < nfair; i++ {
		set := make([]bool, n)
		nonEmpty := false
		for s := range set {
			if r.Float64() < fairDensity {
				set[s] = true
				nonEmpty = true
			}
		}
		if !nonEmpty {
			set[r.Intn(n)] = true
		}
		e.AddFairSet(fmt.Sprintf("h%d", i), set)
	}
	e.MakeTotal()
	return e
}
