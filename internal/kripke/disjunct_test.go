package kripke

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
)

// buildInterleaved constructs a random interleaved model over nData
// data variables and nSched scheduler bits (2^nSched processes) and
// installs all three transition representations on one structure: the
// monolithic relation (SetTrans), the conjunctive per-variable clusters
// (SetClusters) and the per-process disjunctive components
// (SetDisjuncts). Process p owns the data variables v with
// v mod 2^nSched == p; in its turn it drives them with random functions
// of the current state while every other data variable is framed. The
// scheduler bits themselves are unconstrained (nondeterministic
// scheduler). By construction
//
//	⋀_v cluster_v = ⋁_p comp_p
//
// since the process guards are mutually exclusive and exhaustive.
func buildInterleaved(r *rand.Rand, nData, nSched int) *Symbolic {
	names := make([]string, nData+nSched)
	for i := 0; i < nData; i++ {
		names[i] = "d" + string(rune('0'+i))
	}
	for i := 0; i < nSched; i++ {
		names[nData+i] = "s" + string(rune('0'+i))
	}
	s := NewSymbolic(names)
	m := s.M

	k := 1 << nSched
	guards := make([]bdd.Ref, k)
	for p := 0; p < k; p++ {
		g := bdd.True
		for b := 0; b < nSched; b++ {
			v := s.Vars[nData+b].Cur
			if p>>b&1 == 1 {
				g = m.And(g, m.Var(v))
			} else {
				g = m.And(g, m.NVar(v))
			}
		}
		guards[p] = g
	}

	// next[v][p]: the function process p drives variable v with.
	next := make([][]bdd.Ref, nData)
	for v := 0; v < nData; v++ {
		next[v] = make([]bdd.Ref, k)
		frame := m.Var(s.Vars[v].Cur)
		for p := 0; p < k; p++ {
			if v%k == p {
				next[v][p] = randomStateFunc(r, s, nData)
			} else {
				next[v][p] = frame
			}
		}
	}

	clusters := make([]bdd.Ref, nData)
	for v := 0; v < nData; v++ {
		cl := bdd.False
		for p := 0; p < k; p++ {
			cl = m.Or(cl, m.And(guards[p], m.Eq(m.Var(s.Vars[v].Next), next[v][p])))
		}
		clusters[v] = cl
	}
	comps := make([]bdd.Ref, k)
	for p := 0; p < k; p++ {
		c := guards[p]
		for v := 0; v < nData; v++ {
			c = m.And(c, m.Eq(m.Var(s.Vars[v].Next), next[v][p]))
		}
		comps[p] = c
	}
	mono := bdd.True
	for _, cl := range clusters {
		mono = m.And(mono, cl)
	}

	s.SetTrans(mono)
	s.SetClusters(clusters)
	s.SetDisjuncts(comps, nil)

	init := randomStateFunc(r, s, nData+nSched)
	if init == bdd.False {
		init = bdd.True
	}
	s.Init = m.Protect(init)
	return s
}

// randomStateFunc builds a random function over the first n current
// state variables.
func randomStateFunc(r *rand.Rand, s *Symbolic, n int) bdd.Ref {
	m := s.M
	f := bdd.False
	for t := 0; t < 1+r.Intn(3); t++ {
		cube := bdd.True
		for i := 0; i < n; i++ {
			switch r.Intn(3) {
			case 0:
				cube = m.And(cube, m.Var(s.Vars[i].Cur))
			case 1:
				cube = m.And(cube, m.NVar(s.Vars[i].Cur))
			}
		}
		f = m.Or(f, cube)
	}
	return f
}

// randomStateSet builds a random set over all current state variables.
func randomStateSet(r *rand.Rand, s *Symbolic) bdd.Ref {
	return randomStateFunc(r, s, len(s.Vars))
}

// imageModes computes Image and Preimage of set under all three
// strategies and fails the test if any pair disagrees.
func checkImageModes(t *testing.T, s *Symbolic, set bdd.Ref, tag string) {
	t.Helper()
	s.EnableDisjunct(true)
	imgD, preD := s.Image(set), s.Preimage(set)
	s.EnableDisjunct(false)
	imgC, preC := s.Image(set), s.Preimage(set)
	s.EnablePartition(false)
	imgM, preM := s.Image(set), s.Preimage(set)
	s.EnablePartition(true)
	if imgD != imgM || imgC != imgM {
		t.Fatalf("%s: Image differs (disj=%v conj=%v mono=%v)", tag, imgD, imgC, imgM)
	}
	if preD != preM || preC != preM {
		t.Fatalf("%s: Preimage differs (disj=%v conj=%v mono=%v)", tag, preD, preC, preM)
	}
}

func TestDisjunctImageMatchesMonolithic(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		s := buildInterleaved(r, 4, 1+r.Intn(2))
		if s.NumDisjuncts() == 0 {
			t.Fatal("no disjuncts installed")
		}
		for probe := 0; probe < 5; probe++ {
			checkImageModes(t, s, randomStateSet(r, s), "seq")
		}
	}
}

func TestDisjunctImageParallelWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		s := buildInterleaved(r, 4, 2)
		for _, workers := range []int{2, 3, 8} {
			s.SetWorkers(workers)
			for probe := 0; probe < 4; probe++ {
				checkImageModes(t, s, randomStateSet(r, s), "par")
			}
		}
		if s.RelStats().ParallelBatches == 0 {
			t.Fatal("parallel batches not counted")
		}
	}
}

func TestDisjunctReachableAgrees(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for trial := 0; trial < 10; trial++ {
		s := buildInterleaved(r, 5, 1+r.Intn(2))
		if trial%2 == 1 {
			s.SetWorkers(3)
		}
		s.EnableDisjunct(true)
		reachD, _ := s.Reachable()
		s.EnableDisjunct(false)
		reachC, _ := s.Reachable()
		s.EnablePartition(false)
		reachM, _ := s.Reachable()
		s.EnablePartition(true)
		if reachD != reachM || reachC != reachM {
			t.Fatalf("trial %d: reachability differs (disj=%v conj=%v mono=%v)",
				trial, reachD, reachC, reachM)
		}
	}
}

func TestDisjunctPrecedenceAndToggle(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	s := buildInterleaved(r, 3, 1)
	if s.DisjunctEnabled() {
		t.Fatal("disjunctive mode must start disabled")
	}
	if !s.PartitionEnabled() {
		t.Fatal("conjunctive partition should be active by default")
	}
	s.EnableDisjunct(true)
	if !s.DisjunctEnabled() {
		t.Fatal("toggle on failed")
	}
	// Disjunct wins over the (still installed) conjunctive partition.
	set := randomStateSet(r, s)
	s.ResetRelStats()
	s.Image(set)
	if s.RelStats().DisjunctSteps == 0 {
		t.Fatal("disjunctive image did not run while enabled")
	}
	s.EnableDisjunct(false)
	s.ResetRelStats()
	s.Image(set)
	if s.RelStats().DisjunctSteps != 0 {
		t.Fatal("disjunctive image ran while disabled")
	}
}

func TestSetDisjunctsRemoval(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	s := buildInterleaved(r, 3, 1)
	if s.NumDisjuncts() == 0 {
		t.Fatal("expected disjuncts")
	}
	s.SetDisjuncts(nil, nil)
	if s.NumDisjuncts() != 0 || s.Disjunct() != nil {
		t.Fatal("disjuncts should be removed")
	}
	if s.DisjunctEnabled() {
		t.Fatal("removal must disable the disjunctive path")
	}
}

func TestDisjunctTransMaterialization(t *testing.T) {
	// A structure carrying only disjuncts: Trans() must materialize the
	// union of the components on demand.
	s := NewSymbolic([]string{"x", "y"})
	m := s.M
	x, y := s.Vars[0], s.Vars[1]
	compA := m.And(m.Var(x.Cur), m.Eq(m.Var(y.Next), m.NVar(y.Cur)))
	compB := m.And(m.NVar(x.Cur), m.Eq(m.Var(y.Next), m.Var(y.Cur)))
	s.SetDisjuncts([]bdd.Ref{compA, compB}, []string{"a", "b"})
	want := m.Or(compA, compB)
	if got := s.Trans(); got != want {
		t.Fatalf("Trans() = %v, want OR of components %v", got, want)
	}
}

func TestDisjunctHasEdgePointwise(t *testing.T) {
	// Only disjuncts installed, monolithic deferred: HasEdge must decide
	// edges through the components without materializing Trans.
	r := rand.New(rand.NewSource(61))
	names := []string{"a", "b", "s0"}
	s := NewSymbolic(names)
	m := s.M
	// comp0 (s0=0): a' = ¬a, b framed; comp1 (s0=1): b' = a∧b, a framed.
	g0, g1 := m.NVar(s.Vars[2].Cur), m.Var(s.Vars[2].Cur)
	comp0 := m.And(g0, m.And(
		m.Eq(m.Var(s.Vars[0].Next), m.NVar(s.Vars[0].Cur)),
		m.Eq(m.Var(s.Vars[1].Next), m.Var(s.Vars[1].Cur))))
	comp1 := m.And(g1, m.And(
		m.Eq(m.Var(s.Vars[1].Next), m.And(m.Var(s.Vars[0].Cur), m.Var(s.Vars[1].Cur))),
		m.Eq(m.Var(s.Vars[0].Next), m.Var(s.Vars[0].Cur))))
	s.SetDisjuncts([]bdd.Ref{comp0, comp1}, nil)
	mono := m.Or(comp0, comp1)
	for trial := 0; trial < 64; trial++ {
		from := State{r.Intn(2) == 1, r.Intn(2) == 1, r.Intn(2) == 1}
		to := State{r.Intn(2) == 1, r.Intn(2) == 1, r.Intn(2) == 1}
		env := make([]bool, m.NumVars())
		for i, v := range s.Vars {
			env[v.Cur] = from[i]
			env[v.Next] = to[i]
		}
		if got, want := s.HasEdge(from, to), m.Eval(mono, env); got != want {
			t.Fatalf("HasEdge(%v,%v) = %v, want %v", from, to, got, want)
		}
	}
}

func TestDisjunctRelStatsTruthful(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	s := buildInterleaved(r, 4, 2)
	s.EnableDisjunct(true)

	s.ResetRelStats()
	s.Reachable()
	rs := s.RelStats()
	if rs.DisjunctSteps == 0 {
		t.Fatal("disjunct steps not counted")
	}
	if rs.ClusterSteps < rs.DisjunctSteps {
		t.Fatal("ClusterSteps must include disjunct steps")
	}
	if rs.PeakLiveNodes == 0 {
		t.Fatal("peak live nodes not sampled on the disjunctive path")
	}
	if rs.ParallelBatches != 0 {
		t.Fatal("no parallel batches should run with workers=1")
	}

	s.SetWorkers(4)
	// Force every operand over the parallel engine's size gate so the
	// batch actually runs as a shared-engine section.
	s.M.SetParallelGranularity(1)
	s.ResetRelStats()
	calls0 := s.M.Stats.AndExistsCalls
	sections0 := s.M.Stats.ParallelSections
	s.Image(s.Init)
	rs = s.RelStats()
	if rs.ParallelBatches == 0 {
		t.Fatal("parallel batch not counted")
	}
	if s.M.Stats.ParallelSections == sections0 {
		t.Fatal("parallel batch did not run a shared-engine section")
	}
	if s.M.Stats.AndExistsCalls == calls0 {
		t.Fatal("parallel AndExists traffic not folded into manager stats")
	}
	if rs.PeakLiveNodes == 0 {
		t.Fatal("peak live nodes not sampled on the parallel path")
	}
}

func TestDisjunctSurvivesReorder(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	s := buildInterleaved(r, 5, 1)
	s.EnableDisjunct(true)
	s.SetWorkers(2)
	set := s.M.Protect(randomStateSet(r, s))
	imgBefore := s.M.Protect(s.Image(set))

	// Force a committed reorder; the hook must rewrite the components and
	// cubes (the shared parallel engine's caches are generation-tagged,
	// so no per-arena invalidation is needed).
	n := s.M.NumVars()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Reverse the pair blocks (pairs stay adjacent for the groups).
	for i := 0; i < n/2; i++ {
		j := n/2 - 1 - i
		order[2*i], order[2*i+1] = 2*j, 2*j+1
	}
	translated := s.M.Reorder(order, []bdd.Ref{set, imgBefore})
	set, imgBefore = translated[0], translated[1]

	if got := s.Image(set); got != imgBefore {
		t.Fatal("disjunctive image changed across a reorder")
	}
}

// FuzzImageDifferential cross-checks the three image strategies —
// disjunctive (sequential and parallel), conjunctive, monolithic — on
// random interleaved models.
func FuzzImageDifferential(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(1))
	f.Add(int64(2), uint8(2), uint8(2))
	f.Add(int64(99), uint8(2), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, nSched uint8, workers uint8) {
		ns := int(nSched)%2 + 1 // 1 or 2 scheduler bits
		r := rand.New(rand.NewSource(seed))
		s := buildInterleaved(r, 3+r.Intn(3), ns)
		s.SetWorkers(int(workers)%4 + 1)
		for probe := 0; probe < 3; probe++ {
			set := randomStateSet(r, s)
			s.EnableDisjunct(true)
			imgD, preD := s.Image(set), s.Preimage(set)
			s.EnableDisjunct(false)
			s.EnablePartition(false)
			imgM, preM := s.Image(set), s.Preimage(set)
			s.EnablePartition(true)
			if imgD != imgM {
				t.Fatalf("disjunctive Image differs from monolithic (seed=%d)", seed)
			}
			if preD != preM {
				t.Fatalf("disjunctive Preimage differs from monolithic (seed=%d)", seed)
			}
			imgC, preC := s.Image(set), s.Preimage(set)
			if imgC != imgM || preC != preM {
				t.Fatalf("conjunctive image differs from monolithic (seed=%d)", seed)
			}
		}
		s.EnableDisjunct(true)
		reachD, _ := s.Reachable()
		s.EnableDisjunct(false)
		s.EnablePartition(false)
		reachM, _ := s.Reachable()
		s.EnablePartition(true)
		if reachD != reachM {
			t.Fatalf("disjunctive reachability differs (seed=%d)", seed)
		}
	})
}
