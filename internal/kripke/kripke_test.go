package kripke

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/ctl"
)

// twoBitCounter builds a 2-bit modular counter: (b1 b0) increments each
// step; initial state 00.
func twoBitCounter(t *testing.T) *Symbolic {
	t.Helper()
	b := NewBuilder([]string{"b0", "b1"})
	m := b.S.M
	b.InitValue("b0", false)
	b.InitValue("b1", false)
	b.NextFunc("b0", m.Not(b.Cur("b0")))
	b.NextFunc("b1", m.Xor(b.Cur("b1"), b.Cur("b0")))
	return b.Finish()
}

func TestCounterImage(t *testing.T) {
	s := twoBitCounter(t)
	// successor of 00 is 01 (b0 flips)
	img := s.Image(s.Init)
	states := s.EnumStates(img, 0)
	if len(states) != 1 {
		t.Fatalf("counter image has %d states", len(states))
	}
	if !states[0][0] || states[0][1] {
		t.Fatalf("successor of 00 is %v, want b0=1,b1=0", states[0])
	}
}

func TestCounterReachable(t *testing.T) {
	s := twoBitCounter(t)
	reach, iters := s.Reachable()
	if got := s.CountStates(reach); got != 4 {
		t.Fatalf("reachable count = %v, want 4", got)
	}
	if iters < 4 {
		t.Fatalf("unexpected iteration count %d", iters)
	}
	if !s.IsTotal() {
		t.Fatal("counter must be total")
	}
}

func TestPreimageInverseOfImage(t *testing.T) {
	s := twoBitCounter(t)
	// preimage of {01} is {00}
	st := State{true, false}
	pre := s.Preimage(s.StateCube(st))
	got := s.EnumStates(pre, 0)
	if len(got) != 1 || got[0][0] || got[0][1] {
		t.Fatalf("preimage of 01 = %v, want {00}", got)
	}
}

func TestHasEdgeAndSuccessors(t *testing.T) {
	s := twoBitCounter(t)
	if !s.HasEdge(State{false, false}, State{true, false}) {
		t.Fatal("edge 00->01 missing")
	}
	if s.HasEdge(State{false, false}, State{false, true}) {
		t.Fatal("bogus edge 00->10 present")
	}
	succ := s.Successors(State{true, true}, 0)
	if len(succ) != 1 || succ[0][0] || succ[0][1] {
		t.Fatalf("successor of 11 = %v, want 00", succ)
	}
}

func TestAtomSetBoolean(t *testing.T) {
	s := twoBitCounter(t)
	set, err := s.AtomSet(ctl.Atom("b0"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Holds(set, State{true, false}) || s.Holds(set, State{false, true}) {
		t.Fatal("atom b0 resolves wrong")
	}
	// boolean compared to constants
	set, err = s.AtomSet(ctl.Eq("b0", "0"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Holds(set, State{false, false}) {
		t.Fatal("b0=0 wrong")
	}
	set, err = s.AtomSet(ctl.Neq("b1", "true"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Holds(set, State{true, false}) {
		t.Fatal("b1!=true wrong")
	}
	if _, err := s.AtomSet(ctl.Atom("nope")); err == nil {
		t.Fatal("unknown atom should error")
	}
	if _, err := s.AtomSet(ctl.Eq("b0", "banana")); err == nil {
		t.Fatal("bad boolean constant should error")
	}
}

func TestRegisterEqAtom(t *testing.T) {
	s := twoBitCounter(t)
	m := s.M
	s.RegisterEqAtom("count", func(v string) (bdd.Ref, error) {
		// count = b1*2 + b0 compared against "0".."3"
		b0, b1 := m.Var(s.Vars[0].Cur), m.Var(s.Vars[1].Cur)
		switch v {
		case "0":
			return m.And(m.Not(b0), m.Not(b1)), nil
		case "1":
			return m.And(b0, m.Not(b1)), nil
		case "2":
			return m.And(m.Not(b0), b1), nil
		default:
			return m.And(b0, b1), nil
		}
	})
	set, err := s.AtomSet(ctl.Eq("count", "2"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Holds(set, State{false, true}) || s.Holds(set, State{true, true}) {
		t.Fatal("eq resolver wrong")
	}
	nset, err := s.AtomSet(ctl.Neq("count", "2"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Holds(nset, State{false, true}) {
		t.Fatal("neq resolver wrong")
	}
}

func TestNextChoiceNondeterminism(t *testing.T) {
	b := NewBuilder([]string{"x"})
	m := b.S.M
	b.InitValue("x", false)
	b.NextChoice("x", m.Not(b.Cur("x"))) // x may stay or flip
	s := b.Finish()
	succ := s.Successors(State{false}, 0)
	if len(succ) != 2 {
		t.Fatalf("NextChoice gives %d successors, want 2", len(succ))
	}
}

func TestInvariantRestrictsModel(t *testing.T) {
	b := NewBuilder([]string{"x", "y"})
	m := b.S.M
	b.InitValue("x", false)
	b.InitValue("y", false)
	b.NextChoice("x", m.Not(b.Cur("x")))
	b.NextChoice("y", m.Not(b.Cur("y")))
	b.Invariant(m.Not(m.And(b.Cur("x"), b.Cur("y")))) // never both
	s := b.Finish()
	reach, _ := s.Reachable()
	if s.Holds(reach, State{true, true}) {
		t.Fatal("invariant violated in reachable set")
	}
	if got := s.CountStates(reach); got != 3 {
		t.Fatalf("reachable = %v, want 3", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	b := NewBuilder([]string{"x"})
	m := b.S.M
	b.InitValue("x", false)
	// only transition: 0 -> 1 (state 1 deadlocks)
	b.ConstrainTrans(m.And(m.Not(b.Cur("x")), b.Next("x")))
	s := b.Finish()
	if s.IsTotal() {
		t.Fatal("should not be total")
	}
	dead := s.DeadlockStates()
	if !s.Holds(dead, State{true}) || s.Holds(dead, State{false}) {
		t.Fatal("deadlock set wrong")
	}
}

func TestFormatState(t *testing.T) {
	s := twoBitCounter(t)
	got := s.FormatState(State{true, false})
	if !strings.Contains(got, "b0=1") || !strings.Contains(got, "b1=0") {
		t.Fatalf("FormatState = %q", got)
	}
}

func TestStateKeyRoundtrip(t *testing.T) {
	st := State{true, false, true}
	if st.Key() != "101" {
		t.Fatalf("Key = %q", st.Key())
	}
	if StateIndex(st) != 5 {
		t.Fatalf("StateIndex = %d", StateIndex(st))
	}
	back := IndexState(5, 3)
	if back.Key() != st.Key() {
		t.Fatal("IndexState roundtrip failed")
	}
}

func TestExplicitBasics(t *testing.T) {
	e := NewExplicit(3)
	e.AddEdge(0, 1)
	e.AddEdge(0, 1) // idempotent
	e.AddEdge(1, 2)
	e.AddInit(0)
	e.Label(2, "goal")
	if len(e.Succ[0]) != 1 {
		t.Fatal("duplicate edge added")
	}
	if e.IsTotal() {
		t.Fatal("state 2 deadlocks")
	}
	e.MakeTotal()
	if !e.IsTotal() {
		t.Fatal("MakeTotal failed")
	}
	pred := e.Pred()
	if len(pred[1]) != 1 || pred[1][0] != 0 {
		t.Fatalf("Pred wrong: %v", pred)
	}
	if got := e.AtomNames(); len(got) != 1 || got[0] != "goal" {
		t.Fatalf("AtomNames = %v", got)
	}
}

func TestFromExplicitRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		e := RandomExplicit(r, 10, 2, []string{"p", "q"}, 2, 0.3)
		s := FromExplicit(e)
		// every edge present, every non-edge absent
		for u := 0; u < e.N; u++ {
			su := IndexState(u, len(s.Vars))
			succSet := map[int]bool{}
			for _, v := range e.Succ[u] {
				succSet[v] = true
			}
			for v := 0; v < e.N; v++ {
				sv := IndexState(v, len(s.Vars))
				if s.HasEdge(su, sv) != succSet[v] {
					t.Fatalf("edge %d->%d mismatch", u, v)
				}
			}
		}
		// atoms match
		for _, atom := range e.AtomNames() {
			set, err := s.AtomSet(ctl.Atom(atom))
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < e.N; u++ {
				if s.Holds(set, IndexState(u, len(s.Vars))) != e.Labels[u][atom] {
					t.Fatalf("atom %s mismatch at state %d", atom, u)
				}
			}
		}
	}
}

func TestToExplicitRoundTrip(t *testing.T) {
	s := twoBitCounter(t)
	e, index, err := s.ToExplicit(100)
	if err != nil {
		t.Fatal(err)
	}
	if e.N != 4 {
		t.Fatalf("ToExplicit found %d states, want 4", e.N)
	}
	if len(e.Init) != 1 {
		t.Fatalf("init count %d", len(e.Init))
	}
	// the counter is a single 4-cycle
	for u := 0; u < e.N; u++ {
		if len(e.Succ[u]) != 1 {
			t.Fatalf("state %d has %d successors", u, len(e.Succ[u]))
		}
	}
	if len(index) != 4 {
		t.Fatal("index size wrong")
	}
}

func TestToExplicitLimit(t *testing.T) {
	s := twoBitCounter(t)
	if _, _, err := s.ToExplicit(2); err == nil {
		t.Fatal("limit should trigger")
	}
}

func TestRandomExplicitShape(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	e := RandomExplicit(r, 30, 3, []string{"a"}, 2, 0.2)
	if e.N != 30 || !e.IsTotal() || len(e.Fair) != 2 {
		t.Fatal("random structure malformed")
	}
	for _, fs := range e.Fair {
		any := false
		for _, b := range fs {
			any = any || b
		}
		if !any {
			t.Fatal("empty fairness set generated")
		}
	}
}
