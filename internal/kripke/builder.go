package kripke

import (
	"fmt"

	"repro/internal/bdd"
)

// Builder constructs a Symbolic structure from named boolean state
// variables, next-state constraints and initial-state constraints. It is
// the low-level API used by the circuit compiler and the SMV compiler,
// and is convenient for hand-built models in tests and examples.
type Builder struct {
	S     *Symbolic
	index map[string]int

	// clusters collects every ConstrainTrans conjunct; Finish installs
	// them as a conjunctive partition for early-quantified image
	// computation (disable with DisablePartition).
	clusters         []bdd.Ref
	DisablePartition bool
}

// NewBuilder creates a builder over the given state variables. Manager
// options (e.g. bdd.DisableComplementEdges) apply to the structure's
// fresh BDD manager.
func NewBuilder(names []string, opts ...bdd.Option) *Builder {
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			panic(fmt.Sprintf("kripke: duplicate state variable %q", n))
		}
		seen[n] = true
	}
	b := &Builder{S: NewSymbolic(names, opts...), index: map[string]int{}}
	for i, n := range names {
		b.index[n] = i
	}
	return b
}

// Cur returns the BDD of the current-state copy of the named variable.
func (b *Builder) Cur(name string) bdd.Ref {
	return b.S.M.Var(b.S.Vars[b.varIndex(name)].Cur)
}

// Next returns the BDD of the next-state copy of the named variable.
func (b *Builder) Next(name string) bdd.Ref {
	return b.S.M.Var(b.S.Vars[b.varIndex(name)].Next)
}

func (b *Builder) varIndex(name string) int {
	i, ok := b.index[name]
	if !ok {
		panic(fmt.Sprintf("kripke: unknown state variable %q", name))
	}
	return i
}

// ConstrainInit conjoins a constraint into the initial states.
func (b *Builder) ConstrainInit(f bdd.Ref) {
	b.S.Init = b.S.M.And(b.S.Init, f)
}

// ConstrainTrans conjoins a constraint into the transition relation.
// The conjunct is collected as a partition cluster; Finish decides
// whether the monolithic conjunction is built eagerly or deferred.
func (b *Builder) ConstrainTrans(f bdd.Ref) {
	b.clusters = append(b.clusters, f)
}

// InitValue fixes the initial value of a variable.
func (b *Builder) InitValue(name string, val bool) {
	v := b.Cur(name)
	if !val {
		v = b.S.M.Not(v)
	}
	b.ConstrainInit(v)
}

// NextFunc constrains next(name) to equal the function f of the current
// state (a deterministic assignment).
func (b *Builder) NextFunc(name string, f bdd.Ref) {
	b.ConstrainTrans(b.S.M.Eq(b.Next(name), f))
}

// NextChoice constrains next(name) to be either its current value or the
// function f — the nondeterministic-delay idiom used by the
// speed-independent circuit model.
func (b *Builder) NextChoice(name string, f bdd.Ref) {
	m := b.S.M
	nx := b.Next(name)
	cur := b.Cur(name)
	b.ConstrainTrans(m.Or(m.Eq(nx, cur), m.Eq(nx, f)))
}

// NextFree leaves next(name) unconstrained (an input variable).
func (b *Builder) NextFree(name string) {}

// AddFairness registers a fairness constraint by state set.
func (b *Builder) AddFairness(name string, set bdd.Ref) {
	b.S.AddFairness(name, set)
}

// Invariant conjoins an invariant into Init and into both the source and
// target of every transition, restricting the model to states satisfying
// it.
func (b *Builder) Invariant(f bdd.Ref) {
	m := b.S.M
	b.S.Invar = m.And(b.S.Invar, f)
	b.ConstrainInit(f)
	b.ConstrainTrans(m.And(f, b.S.ToNext(f)))
}

// Finish protects the structure's BDDs, installs the conjunctive
// transition partition collected from ConstrainTrans calls, and returns
// the structure. When a partition is installed the monolithic relation
// stays unmaterialized (Symbolic.Trans builds it on first demand) —
// on large models the conjunction can be exponentially bigger than any
// cluster, and the partitioned image computation never touches it. The
// builder must not be used afterwards.
func (b *Builder) Finish() *Symbolic {
	m := b.S.M
	if !b.DisablePartition && len(b.clusters) > 1 {
		b.S.SetClusters(b.clusters)
	} else {
		rel := b.S.Trans() // explicitly installed relation, or True
		for _, c := range b.clusters {
			rel = m.And(rel, c)
		}
		b.S.SetTrans(rel)
	}
	m.Protect(b.S.Init)
	m.Protect(b.S.Invar)
	return b.S
}

// IsTotal reports whether every state (satisfying the invariant) has at
// least one successor. CTL semantics assume a total transition relation;
// models violating this produce vacuous EG/EX results on deadlocked
// states. The underlying ∃v′.Trans is computed once and shared with
// DeadlockStates.
func (s *Symbolic) IsTotal() bool {
	return s.M.Implies(s.Invar, s.hasSuccessors())
}

// DeadlockStates returns the states with no successor.
func (s *Symbolic) DeadlockStates() bdd.Ref {
	return s.M.And(s.Invar, s.M.Not(s.hasSuccessors()))
}
