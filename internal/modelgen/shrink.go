package modelgen

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/smv"
)

// clone deep-copies the model so the shrinker can mutate candidates
// freely.
func (m *Model) clone() *Model {
	c := &Model{Seed: m.Seed, Token: m.Token}
	for _, v := range m.Vars {
		vv := *v
		vv.Enum = append([]string(nil), v.Enum...)
		c.Vars = append(c.Vars, &vv)
	}
	for _, a := range m.Assigns {
		if a == nil {
			c.Assigns = append(c.Assigns, nil)
			continue
		}
		aa := &Assign{Var: a.Var}
		if a.Init != nil {
			iv := *a.Init
			aa.Init = &iv
		}
		aa.Arms = append([]Arm(nil), a.Arms...)
		c.Assigns = append(c.Assigns, aa)
	}
	c.Trans = append([]Expr(nil), m.Trans...)
	c.Fair = append([]Expr(nil), m.Fair...)
	for _, p := range m.Procs {
		pp := *p
		pp.LocalVals = append([]string(nil), p.LocalVals...)
		pp.Arms = append([]Arm(nil), p.Arms...)
		pp.TokenArms = append([]Arm(nil), p.TokenArms...)
		c.Procs = append(c.Procs, &pp)
	}
	c.CTL = append([]Spec(nil), m.CTL...)
	c.LTL = append([]Spec(nil), m.LTL...)
	return c
}

// stillFailing is the shrinker's predicate: the candidate must both
// compile and still trip CheckModel. A candidate whose deletion broke
// compilation is rejected, never reported.
func stillFailing(m *Model) bool {
	src := m.Source()
	if _, err := smv.CompileSource(src); err != nil {
		return false
	}
	return CheckModel(src) != nil
}

// Shrink reduces a failing model to a locally minimal reproducer:
// repeatedly delete specifications, fairness constraints, TRANS
// constraints, process instances, and variables (cascading through the
// per-element dependency sets) as long as the divergence persists.
// The input model is not modified.
func Shrink(m *Model) *Model {
	cur := m.clone()
	for changed := true; changed; {
		changed = false
		// Cheapest first: specs narrow the failure to one formula.
		for i := 0; i < len(cur.LTL); i++ {
			cand := cur.clone()
			cand.LTL = append(cand.LTL[:i], cand.LTL[i+1:]...)
			if stillFailing(cand) {
				cur, changed = cand, true
				i--
			}
		}
		for i := 0; i < len(cur.CTL); i++ {
			cand := cur.clone()
			cand.CTL = append(cand.CTL[:i], cand.CTL[i+1:]...)
			if stillFailing(cand) {
				cur, changed = cand, true
				i--
			}
		}
		for i := 0; i < len(cur.Fair); i++ {
			cand := cur.clone()
			cand.Fair = append(cand.Fair[:i], cand.Fair[i+1:]...)
			if stillFailing(cand) {
				cur, changed = cand, true
				i--
			}
		}
		for i := 0; i < len(cur.Trans); i++ {
			cand := cur.clone()
			cand.Trans = append(cand.Trans[:i], cand.Trans[i+1:]...)
			if stillFailing(cand) {
				cur, changed = cand, true
				i--
			}
		}
		for i := 0; i < len(cur.Procs); i++ {
			cand := cur.clone()
			removed := cand.Procs[i]
			cand.Procs = append(cand.Procs[:i], cand.Procs[i+1:]...)
			cand.dropUses(removed.Local())
			if stillFailing(cand) {
				cur, changed = cand, true
				i--
			}
		}
		for i := 0; i < len(cur.Vars); i++ {
			v := cur.Vars[i]
			if v.Name == cur.Token && len(cur.Procs) > 0 {
				continue // processes reference the token; drop them first
			}
			cand := cur.clone()
			cand.Vars = append(cand.Vars[:i], cand.Vars[i+1:]...)
			cand.Assigns = append(cand.Assigns[:i], cand.Assigns[i+1:]...)
			cand.dropUses(v.Name)
			if stillFailing(cand) {
				cur, changed = cand, true
				i--
			}
		}
	}
	return cur
}

// dropUses removes every element (spec, fairness, TRANS, case arm)
// whose dependency set mentions name. Default TRUE arms only ever use
// their own target, so cases stay total.
func (m *Model) dropUses(name string) {
	filterSpecs := func(in []Spec) []Spec {
		out := in[:0]
		for _, s := range in {
			if !s.Uses[name] {
				out = append(out, s)
			}
		}
		return out
	}
	m.CTL = filterSpecs(m.CTL)
	m.LTL = filterSpecs(m.LTL)
	filterExprs := func(in []Expr) []Expr {
		out := in[:0]
		for _, e := range in {
			if !e.Uses[name] {
				out = append(out, e)
			}
		}
		return out
	}
	m.Trans = filterExprs(m.Trans)
	m.Fair = filterExprs(m.Fair)
	filterArms := func(in []Arm) []Arm {
		out := in[:0]
		for _, a := range in {
			if !a.Guard.Uses[name] && !a.Value.Uses[name] {
				out = append(out, a)
			}
		}
		return out
	}
	for _, a := range m.Assigns {
		if a != nil {
			a.Arms = filterArms(a.Arms)
		}
	}
	for _, p := range m.Procs {
		p.Arms = filterArms(p.Arms)
		p.TokenArms = filterArms(p.TokenArms)
	}
}

// WriteReproducer shrinks a failing model and writes the minimal
// source to dir as an .smv file named after the seed, returning the
// path. The header records the divergence so the file is actionable
// on its own.
func WriteReproducer(m *Model, dir string) (string, error) {
	small := Shrink(m)
	div := CheckModel(small.Source())
	if div == nil {
		// Shrinking is best-effort; if the minimal candidate no longer
		// fails (flaky divergence), keep the original.
		small = m
		div = CheckModel(small.Source())
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("repro_seed%d.smv", m.Seed))
	src := fmt.Sprintf("-- modelgen reproducer, seed %d\n-- divergence: %v\n%s", m.Seed, div, small.Source())
	return path, os.WriteFile(path, []byte(src), 0o644)
}
