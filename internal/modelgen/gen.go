// Package modelgen synthesizes well-formed SMV programs from a seed and
// cross-checks every engine configuration against the explicit-state
// oracle. The generator is the unbounded extension of the hand-written
// corpus in models/: each seed deterministically yields a model with
// boolean/enum/range variables, guarded case assignments, optional
// `process` instances (to exercise the disjunctive image path), TRANS
// constraints, FAIRNESS sections, and a batch of CTL + LTL
// specifications biased toward the nested shapes whose witnesses and
// counterexamples the paper's generator has to get right.
//
// Everything is plain data: a Model can be rendered to SMV source,
// compiled, and — crucially for shrinking — mutated by deleting parts
// while the per-element `uses` sets keep the result well-formed.
package modelgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Expr is a rendered expression fragment plus the flattened variable
// names it mentions (the dependency set the shrinker consults).
type Expr struct {
	Text string
	Uses map[string]bool
}

func uses(names ...string) map[string]bool {
	m := map[string]bool{}
	for _, n := range names {
		m[n] = true
	}
	return m
}

func merge(a, b map[string]bool) map[string]bool {
	m := map[string]bool{}
	for k := range a {
		m[k] = true
	}
	for k := range b {
		m[k] = true
	}
	return m
}

// Arm is one guarded alternative of a case assignment.
type Arm struct {
	Guard Expr
	Value Expr
}

// VarDef declares one main-module variable. Exactly one of Bool, Enum,
// N describes the domain: Bool, enum literals, or the range 0..N-1.
type VarDef struct {
	Name string
	Bool bool
	Enum []string
	N    int
}

// Domain returns the printable domain values (spec atoms pick from it).
func (v *VarDef) Domain() []string {
	switch {
	case v.Bool:
		return []string{"TRUE", "FALSE"}
	case len(v.Enum) > 0:
		return append([]string(nil), v.Enum...)
	default:
		out := make([]string, v.N)
		for i := range out {
			out[i] = fmt.Sprintf("%d", i)
		}
		return out
	}
}

func (v *VarDef) typeText() string {
	switch {
	case v.Bool:
		return "boolean"
	case len(v.Enum) > 0:
		return "{" + strings.Join(v.Enum, ", ") + "}"
	default:
		return fmt.Sprintf("0..%d", v.N-1)
	}
}

// Assign holds the init/next sections for one variable; either may be
// absent (a free variable — the nondeterministic input case).
type Assign struct {
	Var  string
	Init *Expr
	Arms []Arm // nil = no next assignment; otherwise ends in a TRUE arm
}

// Proc is one `process` instance: its own module with a local enum
// variable `st` and the shared token variable passed by (same) name.
type Proc struct {
	Inst      string // instance name, e.g. "p1"
	Mod       string // module name, e.g. "proc1"
	LocalVals []string
	InitVal   string
	Arms      []Arm // next(st); guards over st and the token
	TokenArms []Arm // next(token); empty = this process never writes it
	Fair      bool  // FAIRNESS running inside the module
}

// Local returns the flattened name of the process-local variable.
func (p *Proc) Local() string { return p.Inst + ".st" }

// Spec is one CTL or LTL specification line.
type Spec struct {
	Text string
	Uses map[string]bool
}

// Model is the generator's IR: everything needed to render SMV source
// and to shrink a failing instance structurally.
type Model struct {
	Seed    int64
	Vars    []*VarDef
	Assigns []*Assign // parallel to Vars
	Trans   []Expr
	Fair    []Expr
	Procs   []*Proc
	Token   string // shared variable driven by processes ("" without procs)
	CTL     []Spec
	LTL     []Spec
}

// Config bounds the generator. The zero value is replaced by defaults
// tuned for the tier-1 property test: small state spaces that still
// exercise every syntactic feature.
type Config struct {
	MaxVars   int     // main variables in addition to the token (default 4)
	ProcProb  float64 // probability of generating process instances (default 0.35)
	MaxProcs  int     // process instances when generated (default 2)
	MaxCTL    int     // CTL specs (default 4, min 2)
	MaxLTL    int     // LTL specs (default 3, min 1)
	TransProb float64 // probability of a TRANS constraint on a free var (default 0.5)
}

func (c Config) withDefaults() Config {
	if c.MaxVars == 0 {
		c.MaxVars = 4
	}
	if c.ProcProb == 0 {
		c.ProcProb = 0.35
	}
	if c.MaxProcs == 0 {
		c.MaxProcs = 2
	}
	if c.MaxCTL == 0 {
		c.MaxCTL = 4
	}
	if c.MaxLTL == 0 {
		c.MaxLTL = 3
	}
	if c.TransProb == 0 {
		c.TransProb = 0.5
	}
	return c
}

// Generate builds the seed's model under the default configuration.
// The same seed always yields the same model.
func Generate(seed int64) *Model { return GenerateWith(Config{}, seed) }

// GenerateWith builds the seed's model under cfg.
func GenerateWith(cfg Config, seed int64) *Model {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(seed))
	m := &Model{Seed: seed}

	nVars := 2 + r.Intn(cfg.MaxVars-1)
	for i := 0; i < nVars; i++ {
		m.Vars = append(m.Vars, genVar(r, i))
	}

	if r.Float64() < cfg.ProcProb {
		genProcs(r, m, cfg.MaxProcs)
	}

	for _, v := range m.Vars {
		m.Assigns = append(m.Assigns, genAssign(r, m, v))
	}

	// At most one TRANS constraint, on a variable nobody else drives:
	// `guard -> next(free) = value` keeps the relation total (the guard
	// only ever forces a feasible choice).
	if free := freeVars(m); len(free) > 0 && r.Float64() < cfg.TransProb {
		fv := free[r.Intn(len(free))]
		g := genGuard(r, m, 1)
		val := fv.Domain()[r.Intn(len(fv.Domain()))]
		m.Trans = append(m.Trans, Expr{
			Text: fmt.Sprintf("(%s) -> next(%s) = %s", g.Text, fv.Name, val),
			Uses: merge(g.Uses, uses(fv.Name)),
		})
	}

	nFair := 0
	if p := r.Float64(); p < 0.10 {
		nFair = 2
	} else if p < 0.45 {
		nFair = 1
	}
	for i := 0; i < nFair; i++ {
		m.Fair = append(m.Fair, genGuard(r, m, 1))
	}

	genSpecs(r, m, cfg)
	return m
}

func genVar(r *rand.Rand, i int) *VarDef {
	name := fmt.Sprintf("v%d", i)
	switch r.Intn(4) {
	case 0, 1:
		return &VarDef{Name: name, Bool: true}
	case 2:
		k := 2 + r.Intn(2)
		vals := make([]string, k)
		for j := range vals {
			vals[j] = fmt.Sprintf("%s_%c", name, 'a'+j)
		}
		return &VarDef{Name: name, Enum: vals}
	default:
		return &VarDef{Name: name, N: 2 + r.Intn(3)}
	}
}

// genProcs adds the shared token variable and 2..max process instances
// driving it — the shape the compiler Shannon-expands into per-process
// disjuncts over `_running`.
func genProcs(r *rand.Rand, m *Model, maxProcs int) {
	tok := &VarDef{Name: "tok"}
	if r.Intn(2) == 0 {
		tok.Bool = true
	} else {
		k := 2 + r.Intn(2)
		tok.Enum = make([]string, k)
		for j := range tok.Enum {
			tok.Enum[j] = fmt.Sprintf("tok_%c", 'a'+j)
		}
	}
	m.Vars = append(m.Vars, tok)
	m.Token = tok.Name

	n := 2
	if maxProcs > 2 {
		n += r.Intn(maxProcs - 1)
	}
	for i := 0; i < n; i++ {
		p := &Proc{
			Inst: fmt.Sprintf("p%d", i),
			Mod:  fmt.Sprintf("proc%d", i),
			Fair: r.Float64() < 0.6,
		}
		k := 2 + r.Intn(2)
		p.LocalVals = make([]string, k)
		for j := range p.LocalVals {
			p.LocalVals[j] = fmt.Sprintf("p%dst_%c", i, 'a'+j)
		}
		p.InitVal = p.LocalVals[r.Intn(k)]

		local := &VarDef{Name: "st", Enum: p.LocalVals} // module-local view
		vocab := []*VarDef{local, tok}
		nArms := 1 + r.Intn(2)
		for j := 0; j < nArms; j++ {
			p.Arms = append(p.Arms, genArm(r, vocab, local, p.Inst))
		}
		p.Arms = append(p.Arms, defaultArm(r, local, p.Inst))
		if r.Float64() < 0.7 {
			p.TokenArms = append(p.TokenArms, genArm(r, vocab, tok, p.Inst))
			p.TokenArms = append(p.TokenArms, Arm{
				Guard: Expr{Text: "TRUE", Uses: uses()},
				Value: Expr{Text: tok.Name, Uses: uses(tok.Name)},
			})
		}
		m.Procs = append(m.Procs, p)
	}
}

// flatName maps a module-local variable reference to its flattened
// name for dependency tracking ("" inst = main module).
func flatName(v *VarDef, inst string) string {
	if inst != "" && v.Name == "st" {
		return inst + ".st"
	}
	return v.Name
}

// genAssign builds the init/next sections for a main variable. The
// token is never next-assigned in main when processes drive it (flatten
// would reject the duplicate assignment).
func genAssign(r *rand.Rand, m *Model, v *VarDef) *Assign {
	a := &Assign{Var: v.Name}
	if r.Float64() < 0.75 {
		a.Init = initValue(r, v)
	}
	if v.Name == m.Token && len(m.Procs) > 0 {
		return a
	}
	if r.Float64() < 0.85 {
		nArms := 1 + r.Intn(3)
		for i := 0; i < nArms; i++ {
			a.Arms = append(a.Arms, genArm(r, m.Vars, v, ""))
		}
		a.Arms = append(a.Arms, defaultArm(r, v, ""))
	}
	return a
}

// initValue is a literal or a set literal from the domain.
func initValue(r *rand.Rand, v *VarDef) *Expr {
	dom := v.Domain()
	if !v.Bool && len(dom) > 2 && r.Intn(3) == 0 {
		k := 2 + r.Intn(len(dom)-1)
		r.Shuffle(len(dom), func(i, j int) { dom[i], dom[j] = dom[j], dom[i] })
		picked := append([]string(nil), dom[:k]...)
		sort.Strings(picked)
		return &Expr{Text: "{" + strings.Join(picked, ", ") + "}", Uses: uses()}
	}
	return &Expr{Text: dom[r.Intn(len(dom))], Uses: uses()}
}

// genArm yields a guarded case arm for target; guards draw atoms from
// vocab (flattened through inst for dependency tracking).
func genArm(r *rand.Rand, vocab []*VarDef, target *VarDef, inst string) Arm {
	return Arm{Guard: guardOver(r, vocab, 2, inst), Value: armValue(r, vocab, target, inst)}
}

// defaultArm closes a case: value chosen so the assignment stays total.
func defaultArm(r *rand.Rand, target *VarDef, inst string) Arm {
	g := Expr{Text: "TRUE", Uses: uses()}
	dom := target.Domain()
	switch r.Intn(3) {
	case 0: // stutter
		return Arm{Guard: g, Value: Expr{Text: target.Name, Uses: uses(flatName(target, inst))}}
	case 1: // literal
		return Arm{Guard: g, Value: Expr{Text: dom[r.Intn(len(dom))], Uses: uses()}}
	default: // nondeterministic choice (value-typed targets only: a case
		// may not mix boolean results with set literals)
		if target.Bool || len(dom) < 2 {
			return Arm{Guard: g, Value: Expr{Text: target.Name, Uses: uses(flatName(target, inst))}}
		}
		sort.Strings(dom)
		return Arm{Guard: g, Value: Expr{Text: "{" + strings.Join(dom, ", ") + "}", Uses: uses()}}
	}
}

// armValue picks an in-domain RHS: literal, self, set literal, or (for
// ranges) modular increment.
func armValue(r *rand.Rand, vocab []*VarDef, target *VarDef, inst string) Expr {
	dom := target.Domain()
	switch r.Intn(5) {
	case 0:
		return Expr{Text: target.Name, Uses: uses(flatName(target, inst))}
	case 1:
		if !target.Bool && len(dom) >= 2 {
			k := 2
			cp := append([]string(nil), dom...)
			r.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
			picked := append([]string(nil), cp[:k]...)
			sort.Strings(picked)
			return Expr{Text: "{" + strings.Join(picked, ", ") + "}", Uses: uses()}
		}
	case 2:
		if target.N > 0 {
			step := 1 + r.Intn(target.N-1)
			return Expr{
				Text: fmt.Sprintf("(%s + %d) mod %d", target.Name, step, target.N),
				Uses: uses(flatName(target, inst)),
			}
		}
	case 3:
		if target.Bool {
			g := guardOver(r, vocab, 1, inst)
			return g
		}
	}
	return Expr{Text: dom[r.Intn(len(dom))], Uses: uses()}
}

// genGuard builds a boolean expression over the flattened model
// vocabulary (main vars plus process locals).
func genGuard(r *rand.Rand, m *Model, depth int) Expr {
	return guardOver(r, specVocab(m), depth, "")
}

// guardOver builds a boolean expression of bounded depth whose atoms
// are variable tests from vocab.
func guardOver(r *rand.Rand, vocab []*VarDef, depth int, inst string) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		return atomOver(r, vocab, inst)
	}
	l := guardOver(r, vocab, depth-1, inst)
	switch r.Intn(4) {
	case 0:
		return Expr{Text: "!" + paren(l.Text), Uses: l.Uses}
	case 1:
		rr := guardOver(r, vocab, depth-1, inst)
		return Expr{Text: paren(l.Text) + " & " + paren(rr.Text), Uses: merge(l.Uses, rr.Uses)}
	case 2:
		rr := guardOver(r, vocab, depth-1, inst)
		return Expr{Text: paren(l.Text) + " | " + paren(rr.Text), Uses: merge(l.Uses, rr.Uses)}
	default:
		return l
	}
}

func paren(s string) string {
	if strings.ContainsAny(s, " ") {
		return "(" + s + ")"
	}
	return s
}

// atomOver is a single variable test: a bare boolean, or =/!= against
// a domain value.
func atomOver(r *rand.Rand, vocab []*VarDef, inst string) Expr {
	v := vocab[r.Intn(len(vocab))]
	name := v.Name
	flat := flatName(v, inst)
	if inst == "" {
		// Spec/main-module vocabulary: VarDefs may already carry
		// flattened dotted names (process locals).
		flat = name
	}
	if v.Bool {
		if r.Intn(2) == 0 {
			return Expr{Text: "!" + name, Uses: uses(flat)}
		}
		return Expr{Text: name, Uses: uses(flat)}
	}
	dom := v.Domain()
	op := "="
	if r.Intn(3) == 0 {
		op = "!="
	}
	return Expr{Text: fmt.Sprintf("%s %s %s", name, op, dom[r.Intn(len(dom))]), Uses: uses(flat)}
}

// freeVars lists main variables with no next assignment and no process
// writer — candidates for TRANS constraints.
func freeVars(m *Model) []*VarDef {
	var out []*VarDef
	for i, v := range m.Vars {
		if i < len(m.Assigns) && m.Assigns[i] != nil && len(m.Assigns[i].Arms) > 0 {
			continue
		}
		if v.Name == m.Token && len(m.Procs) > 0 {
			continue
		}
		out = append(out, v)
	}
	return out
}

// specVocab is every flattened variable a specification may mention:
// main variables plus process-local states (never `_running`).
func specVocab(m *Model) []*VarDef {
	out := append([]*VarDef(nil), m.Vars...)
	for _, p := range m.Procs {
		out = append(out, &VarDef{Name: p.Local(), Enum: p.LocalVals})
	}
	return out
}

// Source renders the model as an SMV program, process modules first.
func (m *Model) Source() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- modelgen seed %d\n", m.Seed)
	for _, p := range m.Procs {
		fmt.Fprintf(&b, "MODULE %s(%s)\n", p.Mod, m.Token)
		fmt.Fprintf(&b, "VAR\n  st : {%s};\n", strings.Join(p.LocalVals, ", "))
		b.WriteString("ASSIGN\n")
		fmt.Fprintf(&b, "  init(st) := %s;\n", p.InitVal)
		writeCase(&b, "st", p.Arms)
		if len(p.TokenArms) > 0 {
			writeCase(&b, m.Token, p.TokenArms)
		}
		if p.Fair {
			b.WriteString("FAIRNESS running\n")
		}
		b.WriteString("\n")
	}

	b.WriteString("MODULE main\nVAR\n")
	for _, v := range m.Vars {
		fmt.Fprintf(&b, "  %s : %s;\n", v.Name, v.typeText())
	}
	for _, p := range m.Procs {
		fmt.Fprintf(&b, "  %s : process %s(%s);\n", p.Inst, p.Mod, m.Token)
	}
	var assigns []string
	for _, a := range m.Assigns {
		if a == nil {
			continue
		}
		var sb strings.Builder
		if a.Init != nil {
			fmt.Fprintf(&sb, "  init(%s) := %s;\n", a.Var, a.Init.Text)
		}
		writeCase(&sb, a.Var, a.Arms)
		if sb.Len() > 0 {
			assigns = append(assigns, sb.String())
		}
	}
	if len(assigns) > 0 {
		b.WriteString("ASSIGN\n")
		for _, s := range assigns {
			b.WriteString(s)
		}
	}
	for _, tr := range m.Trans {
		fmt.Fprintf(&b, "TRANS %s\n", tr.Text)
	}
	for _, f := range m.Fair {
		fmt.Fprintf(&b, "FAIRNESS %s\n", f.Text)
	}
	for _, sp := range m.CTL {
		fmt.Fprintf(&b, "SPEC %s\n", sp.Text)
	}
	for _, sp := range m.LTL {
		fmt.Fprintf(&b, "LTLSPEC %s\n", sp.Text)
	}
	return b.String()
}

func writeCase(b *strings.Builder, name string, arms []Arm) {
	if len(arms) == 0 {
		return
	}
	if len(arms) == 1 && arms[0].Guard.Text == "TRUE" {
		fmt.Fprintf(b, "  next(%s) := %s;\n", name, arms[0].Value.Text)
		return
	}
	fmt.Fprintf(b, "  next(%s) := case\n", name)
	for _, a := range arms {
		fmt.Fprintf(b, "    %s : %s;\n", a.Guard.Text, a.Value.Text)
	}
	fmt.Fprintf(b, "  esac;\n")
}
