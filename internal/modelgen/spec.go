package modelgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// ctlShapes are the specification templates the CTL generator draws
// from, biased toward the nested until/globally shapes whose witnesses
// and counterexamples stress the ring-walk generator: AG/AF liveness
// (counterexample = fair lasso), EU/EF reachability (witness = finite
// path), and EG under fairness (witness = fair lasso).
var ctlShapes = []struct {
	tpl   string
	atoms int
}{
	{"AG (%s -> AF %s)", 2},
	{"AG EF %s", 1},
	{"EF (%s & EX %s)", 2},
	{"E [%s U %s]", 2},
	{"A [%s U %s]", 2},
	{"EG %s", 1},
	{"EF EG %s", 1},
	{"AG (%s -> A [%s U %s])", 3},
	{"AF (%s | %s)", 2},
	{"EX (%s & %s)", 2},
}

// ltlShapes mirror the tableau-stressing templates: G(p -> F q) lassos,
// recurrence/persistence (GF/FG), untils and next-steps.
var ltlShapes = []struct {
	tpl   string
	atoms int
}{
	{"G (%s -> F %s)", 2},
	{"F %s", 1},
	{"G %s", 1},
	{"G F %s", 1},
	{"F G %s", 1},
	{"%s U %s", 2},
	{"G (%s -> X %s)", 2},
	{"X %s", 1},
	{"G (%s -> (%s U %s))", 3},
	{"%s W %s", 2},
}

// genSpecs fills m.CTL and m.LTL with templated specifications whose
// atoms test declared variables (never _running or tableau internals).
func genSpecs(r *rand.Rand, m *Model, cfg Config) {
	vocab := specVocab(m)
	nCTL := 2 + r.Intn(cfg.MaxCTL-1)
	for i := 0; i < nCTL; i++ {
		sh := ctlShapes[r.Intn(len(ctlShapes))]
		m.CTL = append(m.CTL, fillShape(r, vocab, sh.tpl, sh.atoms))
	}
	nLTL := 1 + r.Intn(cfg.MaxLTL)
	for i := 0; i < nLTL; i++ {
		sh := ltlShapes[r.Intn(len(ltlShapes))]
		m.LTL = append(m.LTL, fillShape(r, vocab, sh.tpl, sh.atoms))
	}
}

func fillShape(r *rand.Rand, vocab []*VarDef, tpl string, n int) Spec {
	args := make([]any, n)
	u := uses()
	for i := 0; i < n; i++ {
		a := specAtom(r, vocab)
		args[i] = a.Text
		u = merge(u, a.Uses)
	}
	return Spec{Text: fmt.Sprintf(tpl, args...), Uses: u}
}

// specAtom is a variable test in CTL/LTL syntax: bare or negated
// boolean, or =/!= against a domain value. The rendered text never
// needs parentheses inside the shape templates above.
func specAtom(r *rand.Rand, vocab []*VarDef) Expr {
	v := vocab[r.Intn(len(vocab))]
	if v.Bool {
		if r.Intn(3) == 0 {
			return Expr{Text: "!" + v.Name, Uses: uses(v.Name)}
		}
		return Expr{Text: v.Name, Uses: uses(v.Name)}
	}
	dom := v.Domain()
	op := "="
	if r.Intn(3) == 0 {
		op = "!="
	}
	return Expr{Text: strings.Join([]string{v.Name, op, dom[r.Intn(len(dom))]}, " "), Uses: uses(v.Name)}
}
