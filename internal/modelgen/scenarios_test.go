package modelgen

import (
	"os"
	"testing"
)

// The shipped scenario files are pinned renderings of the parameterized
// generators; regenerate with HanoiSource(5)/ChaseSource(8) on drift.
func TestScenarioSourcesPinned(t *testing.T) {
	for _, tc := range []struct {
		file string
		want string
	}{
		{"../../models/hanoi.smv", HanoiSource(5)},
		{"../../models/chase.smv", ChaseSource(8)},
	} {
		got, err := os.ReadFile(tc.file)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != tc.want {
			t.Errorf("%s is out of sync with its generator — regenerate", tc.file)
		}
	}
}

// Both scenario families go through the full differential lattice
// (every engine configuration plus the explicit oracle) at their
// shipped sizes — the oracle caps comfortably cover them.
func TestScenariosDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("lattice run on scenario corpus")
	}
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"hanoi3", HanoiSource(3)},
		{"hanoi5", HanoiSource(5)},
		{"chase6", ChaseSource(6)},
		{"chase8", ChaseSource(8)},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if err := CheckModel(tc.src); err != nil {
				t.Errorf("%s", err)
			}
		})
	}
}
