package modelgen

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// TestModelGenDifferential is the tier-1 property test: 200 generated
// models, each compiled through the full configuration lattice
// (monolithic/partitioned/disjunctive × complement on/off × reorder
// on/off × workers 1/4) and cross-checked against the explicit-state
// oracle. Any divergence is shrunk to a minimal reproducer under
// testdata/ before failing. MODELGEN_SEEDS overrides the count for
// longer local runs; `cmd/modelsoak` is the unbounded version.
func TestModelGenDifferential(t *testing.T) {
	n := int64(200)
	if s := os.Getenv("MODELGEN_SEEDS"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("MODELGEN_SEEDS: %v", err)
		}
		n = v
	}
	for seed := int64(0); seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			m := Generate(seed)
			if err := CheckModel(m.Source()); err != nil {
				path, werr := WriteReproducer(m, "testdata")
				if werr != nil {
					path = fmt.Sprintf("(reproducer not written: %v)", werr)
				}
				t.Errorf("seed %d: %v\nreproducer: %s", seed, err, path)
			}
		})
	}
}
