package modelgen

import (
	"fmt"
	"strings"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/explicit"
	"repro/internal/kripke"
	"repro/internal/ltl"
	"repro/internal/mc"
	"repro/internal/smv"
)

// Cell is one point of the configuration lattice: an image mode, the
// node representation, the reordering policy, and (for the disjunctive
// path) the worker count. Every cell must compute the same reachable
// set and the same verdict for every specification — they are different
// evaluation strategies over the same transition relation.
type Cell struct {
	Mode       string // "monolithic" | "partitioned" | "disjunctive"
	Complement bool   // complement-edge manager vs structural negation
	Reorder    bool   // growth-triggered sifting enabled
	Workers    int    // disjunctive only: parallel image workers
}

func (c Cell) String() string {
	s := c.Mode
	if c.Complement {
		s += "+comp"
	} else {
		s += "-comp"
	}
	if c.Reorder {
		s += "+reorder"
	}
	if c.Mode == "disjunctive" {
		s += fmt.Sprintf("/w%d", c.Workers)
	}
	return s
}

// Cells enumerates the lattice. Disjunctive cells (× workers 1/4) are
// only meaningful when the compiled model has process disjuncts.
func Cells(hasDisjuncts bool) []Cell {
	var out []Cell
	for _, mode := range []string{"partitioned", "monolithic"} {
		for _, comp := range []bool{true, false} {
			for _, reorder := range []bool{false, true} {
				out = append(out, Cell{Mode: mode, Complement: comp, Reorder: reorder, Workers: 1})
			}
		}
	}
	if hasDisjuncts {
		for _, comp := range []bool{true, false} {
			for _, reorder := range []bool{false, true} {
				for _, w := range []int{1, 4} {
					out = append(out, Cell{Mode: "disjunctive", Complement: comp, Reorder: reorder, Workers: w})
				}
			}
		}
	}
	return out
}

// latticeReorder makes growth-triggered sifting fire on generator-sized
// models (default MinNodes is 16k live nodes, far above anything a
// 4-variable model allocates) while keeping each sift one cheap pass.
var latticeReorder = bdd.ReorderOptions{
	GrowthTrigger: 1.5,
	MinNodes:      256,
	MaxPasses:     1,
	Window:        4,
	MaxBlocks:     16,
}

// cellRun is everything observable from one cell: the reachable-state
// count, per-spec verdicts, and the emitted traces (nil where a spec
// holds / no witness shape applies).
type cellRun struct {
	cell      Cell
	c         *smv.Compiled
	reachable float64
	ctl       []bool
	ctlTraces []*core.Trace
	ltl       []bool
	ltlTraces []*core.Trace
	products  []*smv.LTLProduct
}

func (r *cellRun) configure(c *smv.Compiled) {
	switch r.cell.Mode {
	case "monolithic":
		c.S.EnablePartition(false)
	case "disjunctive":
		c.S.EnableDisjunct(true)
		c.S.SetWorkers(r.cell.Workers)
	}
	if r.cell.Reorder {
		c.S.M.EnableAutoReorder(&latticeReorder)
	}
}

// runCell checks every SPEC and LTLSPEC of src under one cell,
// validating each emitted trace against its own structure. Any
// internal inconsistency (invalid trace, failed replay, missing
// counterexample) is an error — those are engine bugs, not divergences
// between cells, but the soak reports them the same way.
func runCell(src string, cell Cell) (*cellRun, error) {
	opts := smv.CompileOptions{DisableComplementEdges: !cell.Complement}
	c, err := smv.CompileSourceWith(src, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: compile: %w", cell, err)
	}
	run := &cellRun{cell: cell, c: c}
	run.configure(c)

	reach, _ := c.S.Reachable()
	run.reachable = c.S.CountStates(reach)

	gen := core.NewGenerator(mc.New(c.S))
	for _, sp := range c.Module.Specs {
		if err := c.ResolveSpecAtoms(sp.Formula); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", cell, sp.Source, err)
		}
		holds, tr, err := gen.CounterexampleInit(sp.Formula)
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %w", cell, sp.Source, err)
		}
		if !holds {
			if tr == nil {
				return nil, fmt.Errorf("%s: %s: failed without a counterexample", cell, sp.Source)
			}
			if err := validateOwnTrace(c.S, tr); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", cell, sp.Source, err)
			}
		}
		run.ctl = append(run.ctl, holds)
		run.ctlTraces = append(run.ctlTraces, tr)
	}
	for _, sp := range c.Module.LTLSpecs {
		p, err := smv.CompileLTLWith(c.Module, sp.Formula, sp.Source, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: LTLSPEC %s: %w", cell, sp.Source, err)
		}
		run.configure(p.Compiled)
		ch := mc.New(p.S)
		holds, tr, err := p.Check(ch)
		if err != nil {
			return nil, fmt.Errorf("%s: LTLSPEC %s: %w", cell, sp.Source, err)
		}
		if !holds {
			if tr == nil {
				return nil, fmt.Errorf("%s: LTLSPEC %s: failed without a counterexample", cell, sp.Source)
			}
			if err := validateOwnTrace(p.S, tr); err != nil {
				return nil, fmt.Errorf("%s: LTLSPEC %s: %w", cell, sp.Source, err)
			}
			// The replay oracle: project the lasso onto the model and
			// evaluate the formula over it with LTL semantics.
			if err := p.ReplayCounterexample(tr); err != nil {
				return nil, fmt.Errorf("%s: LTLSPEC %s: replay: %w", cell, sp.Source, err)
			}
		}
		run.ltl = append(run.ltl, holds)
		run.ltlTraces = append(run.ltlTraces, tr)
		run.products = append(run.products, p)
		ch.Close()
	}
	return run, nil
}

func validateOwnTrace(s *kripke.Symbolic, tr *core.Trace) error {
	if err := core.ValidatePath(s, tr); err != nil {
		return fmt.Errorf("invalid trace: %w", err)
	}
	if tr.IsLasso() && len(s.Fair) > 0 {
		if err := core.ValidateFairLasso(s, tr); err != nil {
			return fmt.Errorf("lasso violates fairness: %w", err)
		}
	}
	return nil
}

// Oracle size bounds: generated models stay far below these; the
// scenario corpus can exceed them, in which case the explicit oracle is
// skipped and only the cell-vs-cell comparison applies.
const (
	maxOracleStates = 6000
	maxOracleEdges  = 60000
)

// buildOracle enumerates the reachable fragment of a compiled model
// into an explicit structure. Labels are rebuilt from the declared
// variables — boolean variables label their name when true, enum and
// range variables label "name=value" — matching the atom conventions
// of both the explicit CTL checker and LabelAtom. (kripke.ToExplicit
// only carries boolean atoms, so it cannot serve as the oracle bridge
// for models with enum state.)
func buildOracle(c *smv.Compiled) (*kripke.Explicit, error) {
	init := c.S.EnumStates(c.S.Init, maxOracleStates+1)
	if len(init) > maxOracleStates {
		return nil, fmt.Errorf("modelgen: too many initial states")
	}
	index := map[string]int{}
	var states []kripke.State
	add := func(st kripke.State) int {
		k := st.Key()
		if i, ok := index[k]; ok {
			return i
		}
		i := len(states)
		index[k] = i
		states = append(states, st)
		return i
	}
	type edge struct{ u, v int }
	var edges []edge
	queue := make([]int, 0, len(init))
	for _, st := range init {
		queue = append(queue, add(st))
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		succs := c.S.Successors(states[u], maxOracleStates+1)
		for _, sv := range succs {
			before := len(states)
			v := add(sv)
			if v == before {
				if len(states) > maxOracleStates {
					return nil, fmt.Errorf("modelgen: oracle state bound exceeded")
				}
				queue = append(queue, v)
			}
			edges = append(edges, edge{u, v})
			if len(edges) > maxOracleEdges {
				return nil, fmt.Errorf("modelgen: oracle edge bound exceeded")
			}
		}
	}

	e := kripke.NewExplicit(len(states))
	for _, ed := range edges {
		e.AddEdge(ed.u, ed.v)
	}
	for _, st := range init {
		e.AddInit(index[st.Key()])
	}
	for i, st := range states {
		for _, name := range c.Order {
			if strings.HasPrefix(name, "_") {
				continue // scheduler/tableau internals never appear in specs
			}
			v := c.StateValue(st, name)
			if v.Kind == smv.VBool {
				if v.B {
					e.Label(i, name)
				}
				continue
			}
			e.Label(i, name+"="+v.String())
		}
	}
	// DEFINE names used as spec atoms are not declared variables, so the
	// per-variable labeling above misses them; resolve each such literal
	// through the same AtomSet machinery the symbolic checker uses.
	// Boolean defines get a plain label. Valued defines compared with
	// "=" get "name=value" where the literal holds and "name=?"
	// elsewhere — "?" is unmentionable in a spec, so the complement
	// label exists purely to mark the name as finite-domain and keep the
	// explicit checkers' boolean 0/1 fallback from firing.
	for l := range specLiterals(c.Module) {
		if c.Vars[l.name] != nil {
			continue // declared variables are already fully labeled
		}
		af := &ctl.Formula{Kind: ctl.KAtom, Name: l.name}
		if l.value != "" {
			af = &ctl.Formula{Kind: ctl.KEq, Name: l.name, Value: l.value}
		}
		set, err := c.S.AtomSet(af)
		if err != nil {
			return nil, err
		}
		for i, st := range states {
			switch holds := c.S.Holds(set, st); {
			case l.value == "" && holds:
				e.Label(i, l.name)
			case l.value != "" && holds:
				e.Label(i, l.name+"="+l.value)
			case l.value != "":
				e.Label(i, l.name+"=?")
			}
		}
	}
	for k, f := range c.S.Fair {
		set := make([]bool, len(states))
		for i, st := range states {
			set[i] = c.S.Holds(f, st)
		}
		e.AddFairSet(c.S.FairNames[k], set)
	}
	return e, nil
}

type literal struct{ name, value string }

// specLiterals collects every atomic literal (bare atom or name=value
// comparison) appearing in the module's SPEC and LTLSPEC formulas.
func specLiterals(m *smv.Module) map[literal]bool {
	lits := map[literal]bool{}
	var walkC func(f *ctl.Formula)
	walkC = func(f *ctl.Formula) {
		if f == nil {
			return
		}
		switch f.Kind {
		case ctl.KAtom:
			lits[literal{f.Name, ""}] = true
		case ctl.KEq, ctl.KNeq:
			lits[literal{f.Name, f.Value}] = true
		}
		walkC(f.L)
		walkC(f.R)
	}
	var walkL func(f *ltl.Formula)
	walkL = func(f *ltl.Formula) {
		if f == nil {
			return
		}
		switch f.Kind {
		case ltl.KAtom:
			lits[literal{f.Name, ""}] = true
		case ltl.KEq, ltl.KNeq:
			lits[literal{f.Name, f.Value}] = true
		}
		walkL(f.L)
		walkL(f.R)
	}
	for _, sp := range m.Specs {
		walkC(sp.Formula)
	}
	for _, sp := range m.LTLSpecs {
		walkL(sp.Formula)
	}
	return lits
}

// Divergence describes a disagreement between two lattice cells or
// between a cell and the explicit-state oracle.
type Divergence struct {
	Where  string // cell (or "explicit") that disagrees with the reference
	Detail string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("modelgen divergence [%s]: %s", d.Where, d.Detail)
}

func diverge(where, format string, args ...any) error {
	return &Divergence{Where: where, Detail: fmt.Sprintf(format, args...)}
}

// CheckModel compiles src through the full configuration lattice and
// the explicit-state oracle and returns the first disagreement found
// (nil when every configuration agrees on every observable). This is
// the predicate the property test, the fuzz target, the soak binary,
// and the shrinker all share.
func CheckModel(src string) error {
	probe, err := smv.CompileSource(src)
	if err != nil {
		return fmt.Errorf("modelgen: generated model does not compile: %w", err)
	}
	cells := Cells(probe.S.NumDisjuncts() > 0)

	runs := make([]*cellRun, len(cells))
	for i, cell := range cells {
		run, err := runCell(src, cell)
		if err != nil {
			return err
		}
		runs[i] = run
	}

	ref := runs[0]
	for _, run := range runs[1:] {
		if run.reachable != ref.reachable {
			return diverge(run.cell.String(), "reachable states %v, reference (%s) has %v",
				run.reachable, ref.cell, ref.reachable)
		}
		for i, holds := range run.ctl {
			if holds != ref.ctl[i] {
				return diverge(run.cell.String(), "SPEC %s: %v, reference says %v",
					ref.c.Module.Specs[i].Source, holds, ref.ctl[i])
			}
		}
		for i, holds := range run.ltl {
			if holds != ref.ltl[i] {
				return diverge(run.cell.String(), "LTLSPEC %s: %v, reference says %v",
					ref.c.Module.LTLSpecs[i].Source, holds, ref.ltl[i])
			}
		}
		// Cross-validate traces: a concrete execution of the model must
		// be accepted by every cell's structure, whichever produced it.
		for i, tr := range run.ctlTraces {
			if tr == nil {
				continue
			}
			if err := core.ValidatePath(ref.c.S, tr); err != nil {
				return diverge(run.cell.String(), "SPEC %s: trace rejected by reference structure: %v",
					ref.c.Module.Specs[i].Source, err)
			}
		}
		for i, tr := range ref.ctlTraces {
			if tr == nil {
				continue
			}
			if err := core.ValidatePath(run.c.S, tr); err != nil {
				return diverge(run.cell.String(), "SPEC %s: reference trace rejected: %v",
					ref.c.Module.Specs[i].Source, err)
			}
		}
		for i, tr := range run.ltlTraces {
			if tr == nil || i >= len(ref.products) {
				continue
			}
			if err := core.ValidatePath(ref.products[i].S, tr); err != nil {
				return diverge(run.cell.String(), "LTLSPEC %s: lasso rejected by reference product: %v",
					ref.c.Module.LTLSpecs[i].Source, err)
			}
		}
	}

	// The independent implementation: explicit-state enumeration of the
	// same reachable fragment, checked with the explicit CTL checker and
	// the explicit LTL product.
	e, err := buildOracle(ref.c)
	if err != nil {
		return nil // model exceeds oracle bounds; lattice agreement already checked
	}
	if float64(e.N) != ref.reachable {
		return diverge("explicit", "enumerated %d reachable states, symbolic counted %v",
			e.N, ref.reachable)
	}
	ec := explicit.New(e)
	for i, sp := range ref.c.Module.Specs {
		want, err := ec.CheckInit(sp.Formula)
		if err != nil {
			return diverge("explicit", "SPEC %s: %v", sp.Source, err)
		}
		if want != ref.ctl[i] {
			return diverge("explicit", "SPEC %s: explicit says %v, symbolic says %v",
				sp.Source, want, ref.ctl[i])
		}
	}
	for i, sp := range ref.c.Module.LTLSpecs {
		want, _, err := explicit.CheckLTL(e, sp.Formula)
		if err != nil {
			continue // product bound exceeded — symbolic replay already validated the lasso
		}
		if want != ref.ltl[i] {
			return diverge("explicit", "LTLSPEC %s: explicit says %v, symbolic says %v",
				sp.Source, want, ref.ltl[i])
		}
	}
	return nil
}
