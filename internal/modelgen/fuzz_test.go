package modelgen

import (
	"testing"

	"repro/internal/smv"
)

// FuzzModelGen drives the full differential lattice from a fuzzed
// generator seed. Every seed yields a well-formed model by
// construction, so the interesting signal is a divergence between
// engine configurations or against the explicit oracle — reported as a
// failure with a shrunk reproducer in testdata/.
func FuzzModelGen(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Add(int64(1<<40 + 7))
	f.Add(int64(-3))
	f.Fuzz(func(t *testing.T, seed int64) {
		m := Generate(seed)
		src := m.Source()
		if _, err := smv.CompileSource(src); err != nil {
			t.Fatalf("seed %d: generated model does not compile: %v\n%s", seed, err, src)
		}
		if err := CheckModel(src); err != nil {
			path, werr := WriteReproducer(m, "testdata")
			t.Fatalf("seed %d: %v (reproducer: %s, write err: %v)", seed, err, path, werr)
		}
	})
}
