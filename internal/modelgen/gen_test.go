package modelgen

import (
	"strings"
	"testing"

	"repro/internal/smv"
)

// TestGenerateDeterministic: the same seed must render byte-identical
// source — reproducers and soak reports reference models by seed alone.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := Generate(seed).Source()
		b := Generate(seed).Source()
		if a != b {
			t.Fatalf("seed %d: two generations differ:\n%s\n---\n%s", seed, a, b)
		}
	}
}

// TestGeneratedModelsCompile: every generated model is a well-formed
// SMV program — it parses, flattens, compiles, and declares at least
// one specification (otherwise the differential is vacuous).
func TestGeneratedModelsCompile(t *testing.T) {
	procs, fair, trans := 0, 0, 0
	for seed := int64(0); seed < 300; seed++ {
		m := Generate(seed)
		src := m.Source()
		c, err := smv.CompileSource(src)
		if err != nil {
			t.Fatalf("seed %d does not compile: %v\n%s", seed, err, src)
		}
		if len(c.Module.Specs) == 0 && len(c.Module.LTLSpecs) == 0 {
			t.Fatalf("seed %d declares no specification", seed)
		}
		if len(m.Procs) > 0 {
			procs++
			if c.S.NumDisjuncts() == 0 {
				t.Fatalf("seed %d has processes but no disjuncts", seed)
			}
		}
		if len(m.Fair) > 0 {
			fair++
		}
		if len(m.Trans) > 0 {
			trans++
		}
	}
	// The generator must actually exercise the features the lattice
	// varies over; a silent bias collapse would make the suite vacuous.
	if procs == 0 || fair == 0 || trans == 0 {
		t.Fatalf("feature starvation: procs=%d fair=%d trans=%d over 300 seeds", procs, fair, trans)
	}
}

// TestShrinkPreservesWellFormedness: shrinking with a predicate that
// accepts everything must still yield a compiling model (the cascade
// deletion keeps cases total and references resolved).
func TestShrinkDropUses(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		m := Generate(seed)
		if len(m.Vars) < 2 {
			continue
		}
		c := m.clone()
		v := c.Vars[0]
		if v.Name == c.Token && len(c.Procs) > 0 {
			continue
		}
		c.Vars = c.Vars[1:]
		c.Assigns = c.Assigns[1:]
		c.dropUses(v.Name)
		src := c.Source()
		if strings.Contains(src, v.Name+" ") || strings.Contains(src, v.Name+")") {
			// Best-effort textual check only; compilation is the contract.
			_ = src
		}
		if _, err := smv.CompileSource(src); err != nil {
			t.Fatalf("seed %d: dropping %s broke the model: %v\n%s", seed, v.Name, err, src)
		}
	}
}
