package modelgen

import (
	"os"
	"path/filepath"
	"testing"
)

// TestReproducersReplay re-checks every committed reproducer in
// testdata/. Each file was written by WriteReproducer when some engine
// configuration diverged during development (the header comment records
// the original divergence); the bugs are fixed, so CheckModel must now
// pass on all of them. A failure here means a fixed divergence came
// back.
func TestReproducersReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("differential replay skipped in -short")
	}
	matches, err := filepath.Glob(filepath.Join("testdata", "repro_*.smv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Skip("no committed reproducers")
	}
	for _, path := range matches {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckModel(string(src)); err != nil {
				t.Fatalf("reproducer diverges again: %v", err)
			}
		})
	}
}
