package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles one of the cmd/ programs into a temp dir.
func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// TestE2ESmvCLI drives the smv binary over the shipped models exactly
// as a user would.
func TestE2ESmvCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildBinary(t, "cmd/smv")

	t.Run("counter holds", func(t *testing.T) {
		out, err := exec.Command(bin, "-stats", "models/counter.smv").CombinedOutput()
		if err != nil {
			t.Fatalf("counter.smv should verify cleanly: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "is true") || strings.Contains(string(out), "is false") {
			t.Fatalf("unexpected verdicts:\n%s", out)
		}
		if !strings.Contains(string(out), "statistics") {
			t.Fatalf("-stats output missing:\n%s", out)
		}
	})

	t.Run("mutex fails with exit 1 and a trace", func(t *testing.T) {
		out, err := exec.Command(bin, "models/mutex.smv").CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Fatalf("want exit 1, got %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "execution sequence") ||
			!strings.Contains(string(out), "p1=critical p2=critical") {
			t.Fatalf("trace missing:\n%s", out)
		}
	})

	t.Run("seitz with tree explanation", func(t *testing.T) {
		out, _ := exec.Command(bin, "-tree", "models/seitz.smv").CombinedOutput()
		if !strings.Contains(string(out), "-- explanation:") ||
			!strings.Contains(string(out), "back to (*)") {
			t.Fatalf("tree output missing:\n%s", out)
		}
	})

	t.Run("simulate", func(t *testing.T) {
		out, err := exec.Command(bin, "-simulate", "5", "-delta", "models/cache.smv").CombinedOutput()
		if err != nil {
			t.Fatalf("simulate failed: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "random execution") ||
			!strings.Contains(string(out), "state 5:") {
			t.Fatalf("simulation output malformed:\n%s", out)
		}
	})

	t.Run("bad model exits 2", func(t *testing.T) {
		tmp := filepath.Join(t.TempDir(), "bad.smv")
		if err := os.WriteFile(tmp, []byte("MODULE main VAR x : ;"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := exec.Command(bin, tmp).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Fatalf("want exit 2, got %v", err)
		}
	})
}

// TestE2EArbiterBinary runs the case-study binary end to end.
func TestE2EArbiterBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildBinary(t, "cmd/arbiter")
	out, err := exec.Command(bin, "-strategy", "precompute").CombinedOutput()
	if err != nil {
		t.Fatalf("arbiter binary failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"reachable states: 12288",
		"AG (tr1 -> AF ta1) is false",
		"validated against the model",
		"AG !(meol & meor) is true",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// TestE2EExperimentsSubset runs the experiments binary on the cheap
// experiments and checks the exit code and format.
func TestE2EExperimentsSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildBinary(t, "cmd/experiments")
	out, err := exec.Command(bin, "-only", "E2,E3,E6").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"## E2", "## E3", "## E6", "| quantity | paper | measured |"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "FAILED") {
		t.Fatalf("an experiment failed:\n%s", s)
	}
}
