package repro

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/smv"
)

// Differential oracle for the complement-edge representation itself:
// every shipped model is checked under every applicable image mode
// twice — once on a complement-edge manager, once on the structural
// DisableComplementEdges reference — and the two runs must agree
// bit-for-bit on every observable: reachable-state counts, CTL and LTL
// verdicts spec by spec, and trace presence. Every emitted trace must
// validate against its own structure AND against the structure built
// under the other representation (traces are concrete executions of
// the same model; which manager produced them cannot matter).

func TestComplementDifferentialModels(t *testing.T) {
	entries, err := os.ReadDir("models")
	if err != nil {
		t.Fatalf("models directory: %v", err)
	}
	checkedSpecs := 0
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".smv") {
			continue
		}
		src, err := os.ReadFile(filepath.Join("models", ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		probe, err := smv.CompileSource(string(src))
		if err != nil {
			t.Fatal(err)
		}
		modes := []string{"partitioned", "monolithic"}
		if probe.S.NumDisjuncts() > 0 {
			modes = append(modes, "disjunctive")
		}
		for _, mode := range modes {
			mode := mode
			t.Run(ent.Name()+"/"+mode, func(t *testing.T) {
				checkedSpecs += compareRepresentations(t, string(src), mode)
			})
		}
	}
	if checkedSpecs == 0 {
		t.Fatal("no spec was compared — differential is vacuous")
	}
}

// repRun holds everything observable from checking one model under one
// representation.
type repRun struct {
	c         *smv.Compiled
	reachable float64
	verdicts  []specVerdict
	traces    []*core.Trace // parallel to verdicts; nil when the spec holds
	ltl       []specVerdict
	ltlTraces []*core.Trace
	products  []*smv.LTLProduct
}

func runUnderRepresentation(t *testing.T, src, mode string, opts smv.CompileOptions) repRun {
	t.Helper()
	c, err := smv.CompileSourceWith(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	configure := func(cc *smv.Compiled) {
		switch mode {
		case "monolithic":
			cc.S.EnablePartition(false)
		case "disjunctive":
			cc.S.EnableDisjunct(true)
			cc.S.SetWorkers(2)
		}
	}
	configure(c)
	out := repRun{c: c}
	reach, _ := c.S.Reachable()
	out.reachable = c.S.CountStates(reach)

	gen := core.NewGenerator(mc.New(c.S))
	for _, sp := range c.Module.Specs {
		if err := c.ResolveSpecAtoms(sp.Formula); err != nil {
			t.Fatalf("%s: %v", sp.Source, err)
		}
		holds, tr, err := gen.CounterexampleInit(sp.Formula)
		if err != nil {
			t.Fatalf("%s: %v", sp.Source, err)
		}
		if !holds {
			if tr == nil {
				t.Fatalf("%s: failed without a counterexample", sp.Source)
			}
			validateTrace(t, sp.Source, c.S, tr)
		}
		out.verdicts = append(out.verdicts, specVerdict{spec: sp.Source, holds: holds, hasTrace: tr != nil})
		out.traces = append(out.traces, tr)
	}
	for _, sp := range c.Module.LTLSpecs {
		p, err := smv.CompileLTLWith(c.Module, sp.Formula, sp.Source, opts)
		if err != nil {
			t.Fatalf("LTLSPEC %s: %v", sp.Source, err)
		}
		configure(p.Compiled)
		ch := mc.New(p.S)
		holds, tr, err := p.Check(ch)
		if err != nil {
			t.Fatalf("LTLSPEC %s: %v", sp.Source, err)
		}
		if !holds {
			validateTrace(t, sp.Source, p.S, tr)
			if err := p.ReplayCounterexample(tr); err != nil {
				t.Fatalf("LTLSPEC %s: %v", sp.Source, err)
			}
		}
		out.ltl = append(out.ltl, specVerdict{spec: sp.Source, holds: holds, hasTrace: tr != nil})
		out.ltlTraces = append(out.ltlTraces, tr)
		out.products = append(out.products, p)
		ch.Close()
	}
	return out
}

func compareRepresentations(t *testing.T, src, mode string) int {
	t.Helper()
	comp := runUnderRepresentation(t, src, mode, smv.CompileOptions{})
	ref := runUnderRepresentation(t, src, mode, smv.CompileOptions{DisableComplementEdges: true})

	if comp.reachable != ref.reachable {
		t.Errorf("reachable states differ: %v (complement) vs %v (reference)",
			comp.reachable, ref.reachable)
	}
	compareVerdicts(t, ref.verdicts, comp.verdicts)
	compareVerdicts(t, ref.ltl, comp.ltl)

	// Cross-validate: each representation's traces are executions of the
	// same model, so the other representation's structure must accept
	// them too.
	for i, tr := range comp.traces {
		if tr == nil {
			continue
		}
		if err := core.ValidatePath(ref.c.S, tr); err != nil {
			t.Errorf("%s: complement-edge trace rejected by reference structure: %v",
				comp.verdicts[i].spec, err)
		}
	}
	for i, tr := range ref.traces {
		if tr == nil {
			continue
		}
		if err := core.ValidatePath(comp.c.S, tr); err != nil {
			t.Errorf("%s: reference trace rejected by complement-edge structure: %v",
				ref.verdicts[i].spec, err)
		}
	}
	for i, tr := range comp.ltlTraces {
		if tr == nil || i >= len(ref.products) {
			continue
		}
		if err := core.ValidatePath(ref.products[i].S, tr); err != nil {
			t.Errorf("LTLSPEC %s: complement-edge lasso rejected by reference product: %v",
				comp.ltl[i].spec, err)
		}
	}
	return len(comp.verdicts) + len(comp.ltl)
}
